//! A miniature standard-cell library synthesized from a [`TechNode`].
//!
//! DSENT bootstraps all of its circuit models from a handful of
//! characterized standard cells; we do the same at coarser granularity.
//! Each [`Cell`] carries input capacitance, internal (output + wiring)
//! capacitance, leakage power and layout area, all derived from the
//! transistor-level parameters of the node. Composite models (routers,
//! arbiters, SRAM periphery) are then expressed as *cell counts × activity*.

use crate::tech::TechNode;
use crate::units::{Farads, Joules, Meters, SquareMeters, Watts};

/// A characterized standard cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Capacitance presented to the driver of each input pin.
    pub input_cap: Farads,
    /// Internal capacitance switched when the output toggles
    /// (drain caps + estimated intra-cell wiring).
    pub internal_cap: Farads,
    /// Static leakage power (state-averaged).
    pub leakage: Watts,
    /// Layout area.
    pub area: SquareMeters,
}

impl Cell {
    /// Energy of one full output transition pair with an external `load`.
    #[inline]
    pub fn switch_energy(&self, vdd: crate::units::Volts, load: Farads) -> Joules {
        Farads(self.internal_cap.value() + load.value()).switching_energy(vdd)
    }
}

/// The library: the small set of cells all electrical models compose.
#[derive(Debug, Clone)]
pub struct StdCellLib {
    /// The technology the library was synthesized from.
    pub tech: TechNode,
    /// Minimum-size inverter.
    pub inv: Cell,
    /// 2-input NAND.
    pub nand2: Cell,
    /// 2-input NOR.
    pub nor2: Cell,
    /// 2:1 multiplexer (transmission-gate style).
    pub mux2: Cell,
    /// XOR2 gate (used in comparators / ECC estimates).
    pub xor2: Cell,
    /// Positive-edge D flip-flop with clock gating support.
    pub dff: Cell,
    /// 6T SRAM bitcell (storage only; periphery modeled separately).
    pub sram_bitcell: Cell,
}

impl StdCellLib {
    /// Synthesize the library for a node.
    ///
    /// Transistor counts per cell follow standard static-CMOS topologies:
    /// INV=2, NAND2/NOR2=4, MUX2=8 (2 transmission gates + inverters),
    /// XOR2=10, DFF=20 (master/slave + local clock buffers), SRAM=6.
    /// Intra-cell wiring adds ~30 % to device capacitance (DSENT uses a
    /// comparable layout-parasitic adder).
    pub fn new(tech: TechNode) -> Self {
        let wiring_factor = 1.3;
        let site = tech.device_site_area();
        let make = |n_inputs: f64, n_devices: f64, drive_mult: f64| -> Cell {
            let wn = Meters(tech.min_device_width.value() * drive_mult);
            let wp = tech.pmos_width_for(wn);
            let pair_gate = Farads(tech.gate_cap(wn).value() + tech.gate_cap(wp).value());
            let pair_drain = Farads(tech.drain_cap(wn).value() + tech.drain_cap(wp).value());
            let input_cap = Farads(pair_gate.value() * n_inputs.max(1.0) / n_inputs.max(1.0));
            // each input pin sees one p/n pair's worth of gate cap
            let internal_cap = Farads(pair_drain.value() * (n_devices / 2.0) * wiring_factor);
            let leak_w = Meters(wn.value() + wp.value());
            let leakage = Watts(
                0.5 * tech.leakage_current(leak_w).value() * tech.vdd.value() * (n_devices / 2.0),
            );
            let area = SquareMeters(site.value() * (n_devices / 2.0) * drive_mult);
            Cell {
                input_cap,
                internal_cap,
                leakage,
                area,
            }
        };

        StdCellLib {
            inv: make(1.0, 2.0, 1.0),
            nand2: make(2.0, 4.0, 1.0),
            nor2: make(2.0, 4.0, 1.0),
            mux2: make(3.0, 8.0, 1.0),
            xor2: make(2.0, 10.0, 1.0),
            dff: make(2.0, 20.0, 1.0),
            sram_bitcell: {
                // SRAM cells use near-minimum devices and an extremely
                // dense layout: ~0.040 µm² at 11 nm class nodes
                // (≈ 20 × pitch² for a 6T cell including well spacing).
                let mut c = make(1.0, 6.0, 0.7);
                let pitch = tech.contacted_gate_pitch.value();
                c.area = SquareMeters(20.0 * pitch * pitch);
                c
            },
            tech,
        }
    }

    /// The paper's node.
    pub fn tri_gate_11nm() -> Self {
        Self::new(TechNode::tri_gate_11nm())
    }

    /// Energy to toggle a DFF (clock + data transition, internal caps).
    pub fn dff_write_energy(&self) -> Joules {
        self.dff.switch_energy(self.tech.vdd, self.dff.input_cap)
    }

    /// Clock energy per DFF per cycle even when data is idle (clock pin
    /// cap). This is the "ungated clock" contributor to NDD energy.
    pub fn dff_clock_energy(&self) -> Joules {
        self.dff.input_cap.switching_energy(self.tech.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Joules, SquareMeters};

    fn lib() -> StdCellLib {
        StdCellLib::tri_gate_11nm()
    }

    #[test]
    fn cells_have_positive_characteristics() {
        let l = lib();
        for c in [
            l.inv,
            l.nand2,
            l.nor2,
            l.mux2,
            l.xor2,
            l.dff,
            l.sram_bitcell,
        ] {
            assert!(c.input_cap.value() > 0.0);
            assert!(c.internal_cap.value() > 0.0);
            assert!(c.leakage.value() > 0.0);
            assert!(c.area.value() > 0.0);
        }
    }

    #[test]
    fn bigger_cells_cost_more() {
        let l = lib();
        assert!(l.dff.internal_cap.value() > l.inv.internal_cap.value());
        assert!(l.dff.leakage.value() > l.nand2.leakage.value());
        assert!(l.dff.area.value() > l.nand2.area.value());
    }

    #[test]
    fn dff_write_energy_sub_femtojoule() {
        // An 11 nm flop toggle should cost ~0.1–1 fJ.
        let e = lib().dff_write_energy();
        assert!(e > Joules(0.02e-15), "{e}");
        assert!(e < Joules(2e-15), "{e}");
    }

    #[test]
    fn sram_cell_area_matches_density_projections() {
        // 11 nm-class 6T SRAM ≈ 0.03–0.06 µm².
        let a = lib().sram_bitcell.area;
        assert!(a > SquareMeters(0.02e-12), "{a}");
        assert!(a < SquareMeters(0.08e-12), "{a}");
    }

    #[test]
    fn clock_energy_below_write_energy() {
        let l = lib();
        assert!(l.dff_clock_energy() < l.dff_write_energy());
    }
}
