//! Serializer/deserializer (SerDes) model for wide optical flits.
//!
//! Paper §V-D closes the flit-width study with: *"though higher link
//! data-rates and SerDes can be used to decrease the number of photonic
//! devices (and hence area) for wide flit-widths, the SerDes power
//! overhead and latency overcomes the marginal gain in performance."*
//! This module makes that argument quantitative: given a logical flit
//! width and a serialization factor `S`, the optical link needs `1/S`
//! the waveguides/rings (area win) but must run its lanes at `S×` the
//! core clock, paying mux/demux trees, lane clocking, and `S−1` extra
//! cycles of serialization latency per flit.

use crate::calib;
use crate::photonics::{OpticalLinkModel, PhotonicParams, PhotonicScenario};
use crate::stdcell::StdCellLib;
use crate::units::{Joules, SquareMeters, Watts};

/// A SerDes-equipped optical data link configuration.
#[derive(Debug, Clone)]
pub struct SerdesLink {
    /// Logical flit width in bits (what the router sees).
    pub flit_width: usize,
    /// Serialization factor (1 = no SerDes; 4 = quarter the waveguides
    /// at 4× the lane rate).
    pub factor: usize,
    /// Physical lane count (`flit_width / factor`).
    pub lanes: usize,
    /// Extra flit latency in core cycles introduced by (de)serialization.
    pub extra_latency_cycles: u32,
    /// Dynamic energy added per flit by the mux/demux trees and the
    /// high-rate lane clocking, at every sender + receiver pair.
    pub energy_per_flit: Joules,
    /// Static power of the per-lane clock multiplication (PLL/CDR
    /// share), per hub.
    pub static_power_per_hub: Watts,
    /// Optical area of the serialized link (waveguides + rings shrink by
    /// the factor).
    pub optical_area: SquareMeters,
}

impl SerdesLink {
    /// Characterize a SerDes configuration for the ONet.
    ///
    /// `factor` must divide `flit_width`. Energy model: serializing one
    /// flit toggles a `factor:1` mux tree per lane per bit-time
    /// (`flit_width` total mux-bit events at the data activity factor),
    /// mirrored by the deserializer; lane clocking runs `factor×` faster,
    /// charged as DFF clock energy per lane per bit-time. CDR/PLL static
    /// power is taken at 1 mW per 10 Gb/s of aggregate lane rate per hub
    /// — a standard wireline figure of merit scaled to 11 nm.
    pub fn new(
        lib: &StdCellLib,
        params: PhotonicParams,
        scenario: PhotonicScenario,
        n_hubs: usize,
        flit_width: usize,
        factor: usize,
        core_clock_hz: f64,
    ) -> Self {
        assert!(factor >= 1, "serialization factor must be ≥ 1");
        assert!(
            flit_width.is_multiple_of(factor),
            "factor {factor} must divide flit width {flit_width}"
        );
        let lanes = flit_width / factor;
        let optics = OpticalLinkModel::new(params, scenario, n_hubs, lanes);

        // Mux/demux trees: log2(factor) stages of 2:1 muxes per lane,
        // each bit of the flit passing through one path end-to-end.
        let stages = (factor as f64).log2().ceil().max(0.0);
        let mux_e = lib.mux2.switch_energy(lib.tech.vdd, lib.mux2.input_cap);
        let tree = flit_width as f64 * calib::DATA_ACTIVITY * stages * mux_e.value();
        // Lane clocking at factor× rate: one DFF clock event per lane per
        // bit-time, at both ends.
        let lane_clk = lanes as f64 * factor as f64 * lib.dff_clock_energy().value();
        let energy_per_flit = Joules(2.0 * (tree + lane_clk));

        // CDR/PLL static: 1 mW per 10 Gb/s aggregate, per hub.
        let aggregate_rate = lanes as f64 * factor as f64 * core_clock_hz;
        let static_power_per_hub = Watts(if factor > 1 {
            aggregate_rate / 10e9 * 1e-3
        } else {
            0.0
        });

        SerdesLink {
            flit_width,
            factor,
            lanes,
            extra_latency_cycles: (factor as u32).saturating_sub(1),
            energy_per_flit,
            static_power_per_hub,
            optical_area: optics.optical_area,
        }
    }
}

/// The §V-D verdict, computed: does serializing a wide flit pay off in
/// energy-latency terms once SerDes overheads are charged?
///
/// Returns `(area_saved_mm2, extra_energy_per_flit, extra_latency)` for
/// the comparison the paper narrates.
pub fn serdes_tradeoff(
    lib: &StdCellLib,
    n_hubs: usize,
    flit_width: usize,
    factor: usize,
) -> (f64, Joules, u32) {
    let base = SerdesLink::new(
        lib,
        PhotonicParams::default(),
        PhotonicScenario::Practical,
        n_hubs,
        flit_width,
        1,
        1.0e9,
    );
    let ser = SerdesLink::new(
        lib,
        PhotonicParams::default(),
        PhotonicScenario::Practical,
        n_hubs,
        flit_width,
        factor,
        1.0e9,
    );
    (
        (base.optical_area.value() - ser.optical_area.value()) * 1e6,
        ser.energy_per_flit - base.energy_per_flit,
        ser.extra_latency_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> StdCellLib {
        StdCellLib::tri_gate_11nm()
    }

    fn mk(flit: usize, factor: usize) -> SerdesLink {
        SerdesLink::new(
            &lib(),
            PhotonicParams::default(),
            PhotonicScenario::Practical,
            64,
            flit,
            factor,
            1.0e9,
        )
    }

    #[test]
    fn factor_one_is_a_plain_link() {
        let s = mk(64, 1);
        assert_eq!(s.lanes, 64);
        assert_eq!(s.extra_latency_cycles, 0);
        assert_eq!(s.static_power_per_hub, Watts(0.0));
    }

    #[test]
    fn serialization_shrinks_optics() {
        let s1 = mk(256, 1);
        let s4 = mk(256, 4);
        assert_eq!(s4.lanes, 64);
        assert!(s4.optical_area.value() < 0.5 * s1.optical_area.value());
    }

    #[test]
    fn serialization_costs_latency_and_energy() {
        let s4 = mk(256, 4);
        assert_eq!(s4.extra_latency_cycles, 3);
        assert!(s4.energy_per_flit.value() > mk(256, 1).energy_per_flit.value());
        assert!(s4.static_power_per_hub.value() > 0.0);
    }

    #[test]
    fn paper_verdict_area_for_energy_latency() {
        // §V-D: serializing a 256-bit flit 4× saves real area but costs
        // energy and cycles — the tradeoff the paper declines.
        let (area_saved, extra_e, extra_lat) = serdes_tradeoff(&lib(), 64, 256, 4);
        assert!(area_saved > 50.0, "area saved {area_saved} mm^2");
        assert!(extra_e.value() > 0.0);
        assert_eq!(extra_lat, 3);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn factor_must_divide_width() {
        let _ = mk(64, 3);
    }
}
