//! Nanophotonic link models.
//!
//! Implements the optical side of the ATAC+ ONet: a WDM ring bus where
//! each of the 64 hubs modulates its *own* wavelength onto every data
//! waveguide (flit-width waveguides) and filters all other hubs'
//! wavelengths at receive. The adaptive SWMR link adds a `log2(hubs)`-bit
//! *select link* and a power-gateable on-chip Ge laser with three modes
//! (idle / unicast / broadcast).
//!
//! The model follows the standard photonic link power methodology (per the
//! Georgas et al. CICC'11 paper the authors cite): work backwards from
//! receiver sensitivity through the worst-case optical loss budget to the
//! required laser output power, then through laser wall-plug efficiency to
//! electrical power. Broadcast provisioning is linear in the number of
//! receivers because each receive ring taps `1/N` of the signal (paper
//! §IV: "laser power provisioned for broadcasts is approximately a linear
//! function of the number of receivers").
//!
//! Energies are reported per *cycle spent in a mode* so the network
//! simulator can integrate them from its SWMR mode counters (Table V).

use crate::calib;
use crate::units::{um2, Decibels, Joules, Seconds, SquareMeters, Watts};

/// Optical technology parameters (paper Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct PhotonicParams {
    /// Laser wall-plug efficiency (0.30 in Table II).
    pub laser_efficiency: f64,
    /// Waveguide routing pitch (4 µm).
    pub waveguide_pitch: f64, // metres
    /// Waveguide propagation loss, dB per centimetre (0.2 dB/cm).
    pub waveguide_loss_db_per_cm: f64,
    /// Waveguide non-linearity power limit (30 mW).
    pub waveguide_nonlinearity_limit: Watts,
    /// Through (past) loss of one ring, dB (0.0001 dB).
    pub ring_through_loss_db: f64,
    /// Drop (into receiver) loss of one ring, dB (1.0 dB).
    pub ring_drop_loss_db: f64,
    /// Area of one ring resonator (100 µm²).
    pub ring_area: SquareMeters,
    /// Photodetector responsivity, A/W (1.1 A/W).
    pub photodetector_responsivity: f64,
}

impl Default for PhotonicParams {
    fn default() -> Self {
        PhotonicParams {
            laser_efficiency: 0.30,
            waveguide_pitch: 4e-6,
            waveguide_loss_db_per_cm: 0.2,
            waveguide_nonlinearity_limit: Watts(30e-3),
            ring_through_loss_db: 0.0001,
            ring_drop_loss_db: 1.0,
            ring_area: um2(100.0),
            photodetector_responsivity: 1.1,
        }
    }
}

/// The four ATAC+ technology flavors of paper Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhotonicScenario {
    /// Ideal (zero-loss) devices, 100 %-efficient power-gated laser,
    /// athermal rings.
    Ideal,
    /// Practical devices, power-gated laser, athermal rings — "ATAC+".
    Practical,
    /// Practical devices, power-gated laser, thermally *tuned* rings.
    RingTuned,
    /// Practical devices, laser always at worst-case (broadcast) power,
    /// thermally tuned rings — "ATAC+(Cons)".
    Conservative,
}

impl PhotonicScenario {
    /// All four flavors in Table IV order.
    pub const ALL: [PhotonicScenario; 4] = [
        PhotonicScenario::Ideal,
        PhotonicScenario::Practical,
        PhotonicScenario::RingTuned,
        PhotonicScenario::Conservative,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PhotonicScenario::Ideal => "ATAC+(Ideal)",
            PhotonicScenario::Practical => "ATAC+",
            PhotonicScenario::RingTuned => "ATAC+(RingTuned)",
            PhotonicScenario::Conservative => "ATAC+(Cons)",
        }
    }

    /// Can the laser be rapidly power gated / throttled?
    pub fn laser_power_gated(self) -> bool {
        !matches!(self, PhotonicScenario::Conservative)
    }

    /// Are the rings athermal (no tuning power)?
    pub fn athermal(self) -> bool {
        matches!(self, PhotonicScenario::Ideal | PhotonicScenario::Practical)
    }

    /// Are the optical devices ideal (zero loss, 100 % laser efficiency)?
    pub fn ideal_devices(self) -> bool {
        matches!(self, PhotonicScenario::Ideal)
    }
}

/// Laser operating mode of an adaptive SWMR link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwmrMode {
    /// Laser off (power-gated scenarios) or at broadcast power (Cons).
    Idle,
    /// Laser throttled for a single receiver.
    Unicast,
    /// Laser at full power for all receivers.
    Broadcast,
}

/// Characterized adaptive SWMR optical link (one sender hub's data +
/// select channels) plus ONet chip-level aggregates.
#[derive(Debug, Clone)]
pub struct OpticalLinkModel {
    /// Technology parameters used.
    pub params: PhotonicParams,
    /// Scenario (Table IV flavor).
    pub scenario: PhotonicScenario,
    /// Number of hubs on the ring (64).
    pub n_hubs: usize,
    /// Data-link width = flit width (waveguide count).
    pub data_width: usize,
    /// Select-link width = ⌈log2(hubs)⌉ bits.
    pub select_width: usize,
    /// Worst-case optical path loss (sender modulator → farthest
    /// receiver's detector), excluding the 1/N receive split.
    pub path_loss: Decibels,
    /// Laser wall-plug power of one sender's *data* link in unicast mode.
    pub unicast_laser_power: Watts,
    /// Laser wall-plug power of one sender's *data* link in broadcast mode.
    pub broadcast_laser_power: Watts,
    /// Laser wall-plug power of one sender's *select* link while
    /// signalling (always addresses all hubs, i.e. broadcast-provisioned).
    pub select_laser_power: Watts,
    /// Modulator dynamic energy per bit.
    pub modulator_energy_per_bit: Joules,
    /// Receiver dynamic energy per bit (per receiving hub).
    pub receiver_energy_per_bit: Joules,
    /// Static receiver bias power of permanently tuned-in select receivers,
    /// whole chip.
    pub select_receiver_bias: Watts,
    /// Ring thermal tuning power, whole chip (0 if athermal).
    pub ring_tuning_power: Watts,
    /// Total ring count on the chip (data + select, modulators + filters).
    pub total_rings: usize,
    /// Total waveguide + ring area on the die.
    pub optical_area: SquareMeters,
    /// Whether the broadcast channel power hit the waveguide
    /// non-linearity limit (the link would be error-limited in practice).
    pub power_clamped: bool,
}

impl OpticalLinkModel {
    /// Build the model for `n_hubs` hubs and a `data_width`-bit data link,
    /// using the waveguide length from [`calib::ONET_WAVEGUIDE_LENGTH_M`].
    pub fn new(
        params: PhotonicParams,
        scenario: PhotonicScenario,
        n_hubs: usize,
        data_width: usize,
    ) -> Self {
        let length_cm = calib::ONET_WAVEGUIDE_LENGTH_M * 100.0;
        let wg_loss = Decibels(params.waveguide_loss_db_per_cm * length_cm);
        Self::with_waveguide_loss(params, scenario, n_hubs, data_width, wg_loss)
    }

    /// Build with an explicit *total* worst-case waveguide propagation loss
    /// (used by the Fig. 9 sensitivity sweep, whose x-axis is total dB).
    pub fn with_waveguide_loss(
        params: PhotonicParams,
        scenario: PhotonicScenario,
        n_hubs: usize,
        data_width: usize,
        waveguide_loss: Decibels,
    ) -> Self {
        assert!(n_hubs >= 2, "an SWMR link needs at least 2 hubs");
        assert!(data_width >= 1);
        let select_width = (usize::BITS - (n_hubs - 1).leading_zeros()) as usize;

        // Worst-case path loss: full waveguide + through losses of all
        // other hubs' rings + the drop into the receiver + modulator
        // insertion + misc. The 1/N broadcast split is modeled by the
        // linear receiver-count factor, not as a dB term.
        let path_loss = if scenario.ideal_devices() {
            Decibels::ZERO
        } else {
            waveguide_loss
                + Decibels(params.ring_through_loss_db * (n_hubs as f64 - 1.0))
                + Decibels(params.ring_drop_loss_db)
                + Decibels(calib::MODULATOR_INSERTION_LOSS_DB)
                + Decibels(calib::MISC_PATH_LOSS_DB)
        };
        let efficiency = if scenario.ideal_devices() {
            1.0
        } else {
            params.laser_efficiency
        };

        // Per-wavelength-channel optical output power for R receivers,
        // clamped at the waveguide non-linearity limit (Table II: 30 mW):
        // above that power the waveguide distorts the signal, so no
        // physical design can inject more — the clamp is what bounds the
        // laser-power blow-up at extreme waveguide losses (Fig. 9's tail).
        let limit = params.waveguide_nonlinearity_limit;
        let channel_optical = |receivers: f64| -> Watts {
            Watts(
                (receivers * calib::RECEIVER_SENSITIVITY_W * path_loss.linear_factor())
                    .min(limit.value()),
            )
        };
        let bcast_rx = (n_hubs - 1) as f64;
        let bcast_opt = channel_optical(bcast_rx);
        let power_clamped = bcast_opt >= limit;

        let wallplug = |p: Watts| Watts(p.value() / efficiency);
        let unicast_laser_power = wallplug(channel_optical(1.0)) * data_width as f64;
        let broadcast_laser_power = wallplug(bcast_opt) * data_width as f64;
        let select_laser_power = wallplug(bcast_opt) * select_width as f64;

        // Ring census (see DESIGN.md): every hub modulates its own λ on
        // every waveguide and filters every other hub's λ on every
        // waveguide, for both data and select links.
        let n = n_hubs;
        let wavegs = data_width + select_width;
        let modulators = n * wavegs;
        let filters = n * (n - 1) * wavegs;
        let total_rings = modulators + filters;

        let ring_tuning_power = if scenario.athermal() {
            Watts::ZERO
        } else {
            Watts(total_rings as f64 * calib::RING_TUNING_W_PER_RING)
        };

        // Select receivers are permanently tuned in (the mechanism that
        // lets the link change modes dynamically) and burn bias power.
        let select_receivers = n * (n - 1) * select_width;
        let select_receiver_bias = Watts(select_receivers as f64 * calib::RECEIVER_BIAS_W);

        let (mod_e, rx_e) = (
            Joules(calib::MODULATOR_ENERGY_PER_BIT_J),
            Joules(calib::RECEIVER_ENERGY_PER_BIT_J),
        );

        let wg_area =
            SquareMeters(wavegs as f64 * calib::ONET_WAVEGUIDE_LENGTH_M * params.waveguide_pitch);
        let ring_area = SquareMeters(total_rings as f64 * params.ring_area.value());
        let optical_area = SquareMeters(wg_area.value() + ring_area.value());

        OpticalLinkModel {
            params,
            scenario,
            n_hubs,
            data_width,
            select_width,
            path_loss,
            unicast_laser_power,
            broadcast_laser_power,
            select_laser_power,
            modulator_energy_per_bit: mod_e,
            receiver_energy_per_bit: rx_e,
            select_receiver_bias,
            ring_tuning_power,
            total_rings,
            optical_area,
            power_clamped,
        }
    }

    /// Laser wall-plug power of one sender's data link in `mode`.
    ///
    /// In the Conservative scenario the laser cannot be throttled or
    /// gated, so every mode costs broadcast power.
    pub fn laser_power(&self, mode: SwmrMode) -> Watts {
        if !self.scenario.laser_power_gated() {
            return self.broadcast_laser_power;
        }
        match mode {
            SwmrMode::Idle => Watts::ZERO,
            SwmrMode::Unicast => self.unicast_laser_power,
            SwmrMode::Broadcast => self.broadcast_laser_power,
        }
    }

    /// Laser energy of one sender's data link spending `cycles` cycles of
    /// `cycle_time` in `mode`.
    pub fn laser_energy(&self, mode: SwmrMode, cycles: u64, cycle_time: Seconds) -> Joules {
        self.laser_power(mode) * (cycle_time * cycles as f64)
    }

    /// Dynamic energy to *send* one flit (modulate `data_width` bits at
    /// the data activity factor).
    pub fn flit_modulation_energy(&self) -> Joules {
        self.modulator_energy_per_bit * (self.data_width as f64 * calib::DATA_ACTIVITY)
    }

    /// Dynamic energy for `receivers` hubs to each *receive* one flit.
    pub fn flit_receive_energy(&self, receivers: usize) -> Joules {
        self.receiver_energy_per_bit
            * (receivers as f64 * self.data_width as f64 * calib::DATA_ACTIVITY)
    }

    /// Energy of one select-link notification: a `select_width`-bit symbol
    /// modulated once and received by all other hubs, plus one cycle of
    /// select-link laser power.
    pub fn select_notification_energy(&self, cycle_time: Seconds) -> Joules {
        let bits = self.select_width as f64;
        let modulate = self.modulator_energy_per_bit * (bits * calib::DATA_ACTIVITY);
        let receive =
            self.receiver_energy_per_bit * ((self.n_hubs - 1) as f64 * bits * calib::DATA_ACTIVITY);
        let laser = if self.scenario.laser_power_gated() {
            self.select_laser_power * cycle_time
        } else {
            // Cons: select laser is rolled into the static budget below.
            Joules::ZERO
        };
        modulate + receive + laser
    }

    /// Energy of one laser power transition (on/off or level change).
    ///
    /// §II-A: the on-chip Ge laser settles within 1 ns; during the settle
    /// the bias current ramps, dissipating roughly the target mode's
    /// wall-plug power for that nanosecond. Charged per transition from
    /// the network's `laser_transitions` counter (gated scenarios only —
    /// the Conservative laser never transitions).
    pub fn transition_energy(&self) -> Joules {
        if !self.scenario.laser_power_gated() {
            return Joules::ZERO;
        }
        const SETTLE: Seconds = Seconds(1e-9);
        // Transitions are dominated by unicast setups (Table V).
        self.unicast_laser_power * SETTLE
    }

    /// Total *static* (non-data-dependent) power of the entire ONet in
    /// this scenario: ring tuning + permanently tuned-in select-receiver
    /// bias, plus — only when the laser cannot be gated — all hubs' data
    /// and select lasers at worst-case power.
    pub fn static_power(&self) -> Watts {
        let mut p = self.ring_tuning_power + self.select_receiver_bias;
        if !self.scenario.laser_power_gated() {
            p += (self.broadcast_laser_power + self.select_laser_power) * self.n_hubs as f64;
        }
        p
    }

    /// Static power attributable to ring tuning only (Fig. 7 breakdown).
    pub fn tuning_power(&self) -> Watts {
        self.ring_tuning_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ns;

    fn model(s: PhotonicScenario) -> OpticalLinkModel {
        OpticalLinkModel::new(PhotonicParams::default(), s, 64, 64)
    }

    #[test]
    fn select_width_is_log2_hubs() {
        assert_eq!(model(PhotonicScenario::Practical).select_width, 6);
        let m8 = OpticalLinkModel::new(
            PhotonicParams::default(),
            PhotonicScenario::Practical,
            8,
            64,
        );
        assert_eq!(m8.select_width, 3);
    }

    #[test]
    fn ring_census_matches_paper_magnitude() {
        // Paper: "~260K rings" for the data network; our census including
        // the select link lands within ~15 % of 260 K.
        let m = model(PhotonicScenario::Practical);
        assert!(m.total_rings > 250_000, "{}", m.total_rings);
        assert!(m.total_rings < 300_000, "{}", m.total_rings);
    }

    #[test]
    fn broadcast_laser_is_about_receivers_times_unicast() {
        let m = model(PhotonicScenario::Practical);
        let ratio = m.broadcast_laser_power / m.unicast_laser_power;
        assert!((ratio - 63.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn ideal_devices_are_lossless_and_efficient() {
        let ideal = model(PhotonicScenario::Ideal);
        let practical = model(PhotonicScenario::Practical);
        assert_eq!(ideal.path_loss, Decibels::ZERO);
        assert!(ideal.broadcast_laser_power < practical.broadcast_laser_power);
        // Ideal removes both the loss factor and the 70 % efficiency hit.
        let ratio = practical.broadcast_laser_power / ideal.broadcast_laser_power;
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn conservative_laser_cannot_idle() {
        let cons = model(PhotonicScenario::Conservative);
        assert_eq!(cons.laser_power(SwmrMode::Idle), cons.broadcast_laser_power);
        assert_eq!(
            cons.laser_power(SwmrMode::Unicast),
            cons.broadcast_laser_power
        );
        let prac = model(PhotonicScenario::Practical);
        assert_eq!(prac.laser_power(SwmrMode::Idle), Watts::ZERO);
        assert!(prac.laser_power(SwmrMode::Unicast) < prac.laser_power(SwmrMode::Broadcast));
    }

    #[test]
    fn tuning_power_only_for_tuned_scenarios() {
        assert_eq!(model(PhotonicScenario::Ideal).tuning_power(), Watts::ZERO);
        assert_eq!(
            model(PhotonicScenario::Practical).tuning_power(),
            Watts::ZERO
        );
        assert!(model(PhotonicScenario::RingTuned).tuning_power().value() > 1.0);
        assert!(model(PhotonicScenario::Conservative).tuning_power().value() > 1.0);
    }

    #[test]
    fn static_power_ordering_matches_fig7() {
        // Cons (ungated laser + tuning) > RingTuned (tuning) > Practical
        // (bias only) >= Ideal.
        let p = |s| model(s).static_power().value();
        assert!(p(PhotonicScenario::Conservative) > p(PhotonicScenario::RingTuned));
        assert!(p(PhotonicScenario::RingTuned) > p(PhotonicScenario::Practical));
        assert!(p(PhotonicScenario::Practical) >= p(PhotonicScenario::Ideal));
    }

    #[test]
    fn cons_static_laser_is_watts_scale() {
        // The un-gateable laser across 64 hubs should be a many-watt
        // chip-level budget — the effect Fig. 7 visualizes.
        let cons = model(PhotonicScenario::Conservative);
        let laser_part = cons.static_power() - cons.ring_tuning_power - cons.select_receiver_bias;
        assert!(laser_part.value() > 1.0, "{laser_part}");
        assert!(laser_part.value() < 100.0, "{laser_part}");
    }

    #[test]
    fn optical_area_matches_paper_magnitude() {
        // Paper Fig. 10: waveguides + optical devices ≈ 40 mm².
        let m = model(PhotonicScenario::Practical);
        let mm2 = m.optical_area.value() * 1e6;
        assert!(mm2 > 20.0, "{mm2} mm^2");
        assert!(mm2 < 80.0, "{mm2} mm^2");
    }

    #[test]
    fn area_grows_with_flit_width() {
        // Paper Fig. 11 discussion: 256-bit flits cost ~160 mm² of optics.
        let m64 = model(PhotonicScenario::Practical);
        let m256 = OpticalLinkModel::new(
            PhotonicParams::default(),
            PhotonicScenario::Practical,
            64,
            256,
        );
        let ratio = m256.optical_area.value() / m64.optical_area.value();
        assert!(ratio > 3.0, "ratio {ratio}");
        let mm2 = m256.optical_area.value() * 1e6;
        assert!(mm2 > 100.0 && mm2 < 300.0, "{mm2} mm^2");
    }

    #[test]
    fn laser_energy_integrates_power_over_cycles() {
        let m = model(PhotonicScenario::Practical);
        let e = m.laser_energy(SwmrMode::Unicast, 10, ns(1.0));
        let expect = m.unicast_laser_power * ns(10.0);
        assert!((e.value() - expect.value()).abs() < 1e-18);
    }

    #[test]
    fn waveguide_loss_sweep_monotonic() {
        let mut last = 0.0;
        for db in [0.2, 0.5, 1.0, 2.0, 4.0] {
            let m = OpticalLinkModel::with_waveguide_loss(
                PhotonicParams::default(),
                PhotonicScenario::Practical,
                64,
                64,
                Decibels(db),
            );
            assert!(m.broadcast_laser_power.value() > last);
            last = m.broadcast_laser_power.value();
        }
    }

    #[test]
    fn transition_energy_gated_only() {
        let prac = model(PhotonicScenario::Practical);
        assert!(prac.transition_energy().value() > 0.0);
        // ~1 ns at unicast power
        let expect = prac.unicast_laser_power.value() * 1e-9;
        assert!((prac.transition_energy().value() - expect).abs() < 1e-18);
        assert_eq!(
            model(PhotonicScenario::Conservative).transition_energy(),
            Joules::ZERO,
            "an un-gateable laser never transitions"
        );
    }

    #[test]
    fn select_notification_has_energy() {
        let m = model(PhotonicScenario::Practical);
        let e = m.select_notification_energy(ns(1.0));
        assert!(e.value() > 0.0);
        // Select is narrow: far cheaper than a broadcast data flit +
        // 63 receivers.
        assert!(e < m.flit_modulation_energy() + m.flit_receive_energy(63));
    }

    #[test]
    fn nonlinearity_limit_clamps_power() {
        // At absurd waveguide losses the per-channel power saturates at
        // the 30 mW non-linearity limit instead of growing exponentially.
        let m = OpticalLinkModel::with_waveguide_loss(
            PhotonicParams::default(),
            PhotonicScenario::Practical,
            64,
            64,
            Decibels(80.0),
        );
        assert!(m.power_clamped);
        let per_channel = m.broadcast_laser_power.value() / m.data_width as f64
            * PhotonicParams::default().laser_efficiency;
        assert!(
            (per_channel - 30e-3).abs() < 1e-6,
            "per-channel optical power {per_channel} should be clamped at 30 mW"
        );
        // the default configuration is far below the limit
        assert!(!model(PhotonicScenario::Practical).power_clamped);
    }
}
