//! On-chip wire energy / delay models.
//!
//! Global and semi-global on-chip wires are the dominant cost of the
//! electrical mesh: every flit-hop drives `flit_width` wires of roughly one
//! tile length. We model a repeated wire in the standard way: capacitance
//! per unit length (conductor-to-ground + coupling), optimally-inserted
//! repeaters, and a velocity set by the repeater RC product.
//!
//! Wire capacitance per unit length is nearly constant across technology
//! nodes (geometric scaling cancels) at roughly 0.2 pF/mm for semi-global
//! layers; DSENT's defaults are in the same range.

use crate::stdcell::StdCellLib;
use crate::units::{Farads, Joules, Meters, Seconds, SquareMeters, Watts};

/// A repeated (buffered) wire class.
#[derive(Debug, Clone)]
pub struct WireModel {
    /// Capacitance per metre (including coupling; worst-case neighbours
    /// are accounted via the activity factor at the call site).
    pub cap_per_meter: Farads,
    /// Repeater spacing.
    pub repeater_spacing: Meters,
    /// Repeater size relative to a minimum inverter.
    pub repeater_size: f64,
    /// Signal velocity (m/s) of the repeated wire.
    pub velocity: f64,
    /// Wire pitch (for area/bisection estimates).
    pub pitch: Meters,
    /// Library used for repeater energetics.
    lib: StdCellLib,
}

impl WireModel {
    /// Semi-global wire class used for mesh links, per DSENT-style defaults:
    /// 0.2 pF/mm, 4× min-pitch routing, repeaters every 250 µm sized 24×.
    /// Velocity ≈ 1.5 mm per 1 GHz cycle at 11 nm with these repeaters —
    /// comfortably covering one tile per cycle, matching the paper's
    /// 1-cycle link delay.
    pub fn semi_global(lib: &StdCellLib) -> Self {
        WireModel {
            cap_per_meter: Farads(0.2e-12 / 1e-3), // 0.2 pF/mm
            repeater_spacing: Meters(250e-6),
            repeater_size: 24.0,
            velocity: 1.5e-3 / 1e-9, // 1.5 mm/ns
            pitch: Meters(lib.tech.min_wire_pitch.value() * 4.0),
            lib: lib.clone(),
        }
    }

    /// Energy to send one bit transition over a wire of length `len`
    /// (wire cap + repeater caps, full transition pair).
    pub fn energy_per_bit(&self, len: Meters) -> Joules {
        let wire_cap = Farads(self.cap_per_meter.value() * len.value());
        let n_repeaters = (len.value() / self.repeater_spacing.value()).ceil();
        let rep_cap = Farads(
            n_repeaters
                * self.repeater_size
                * (self.lib.inv.input_cap.value() + self.lib.inv.internal_cap.value()),
        );
        Farads(wire_cap.value() + rep_cap.value()).switching_energy(self.lib.tech.vdd)
    }

    /// Propagation delay over length `len`.
    pub fn delay(&self, len: Meters) -> Seconds {
        Seconds(len.value() / self.velocity)
    }

    /// Leakage power of the repeaters on a wire of length `len`.
    pub fn leakage(&self, len: Meters) -> Watts {
        let n_repeaters = (len.value() / self.repeater_spacing.value()).ceil();
        Watts(n_repeaters * self.repeater_size * self.lib.inv.leakage.value())
    }

    /// Area of the repeaters of one wire of length `len` (the wire itself
    /// lives on metal above active area).
    pub fn repeater_area(&self, len: Meters) -> SquareMeters {
        let n_repeaters = (len.value() / self.repeater_spacing.value()).ceil();
        SquareMeters(n_repeaters * self.repeater_size * self.lib.inv.area.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{mm, pj};

    fn wire() -> WireModel {
        WireModel::semi_global(&StdCellLib::tri_gate_11nm())
    }

    #[test]
    fn millimetre_bit_energy_is_tens_of_femtojoules() {
        // 0.2 pF/mm at 0.6 V -> 72 fJ/mm wire alone; repeaters add a bit.
        let e = wire().energy_per_bit(mm(1.0));
        assert!(e > pj(0.05), "{e}");
        assert!(e < pj(0.2), "{e}");
    }

    #[test]
    fn energy_scales_linearly_with_length() {
        let w = wire();
        let e1 = w.energy_per_bit(mm(1.0)).value();
        let e4 = w.energy_per_bit(mm(4.0)).value();
        let ratio = e4 / e1;
        assert!((ratio - 4.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn one_tile_fits_in_one_cycle() {
        // A ~0.7 mm tile must be traversable in < 1 ns for the paper's
        // 1-cycle link delay at 1 GHz.
        let d = wire().delay(mm(0.7));
        assert!(d.value() < 1e-9, "{d}");
    }

    #[test]
    fn leakage_and_area_grow_with_length() {
        let w = wire();
        assert!(w.leakage(mm(4.0)).value() > w.leakage(mm(1.0)).value());
        assert!(w.repeater_area(mm(4.0)).value() > w.repeater_area(mm(1.0)).value());
    }
}
