//! Mini-McPAT/CACTI SRAM cache model.
//!
//! Produces area, per-access dynamic energy, leakage and idle clock power
//! for the paper's cache configuration (private 32 KB L1-I, 32 KB L1-D,
//! 256 KB L2, plus the ACKwise/Dir directory cache whose entry width
//! scales with the hardware sharer count `k`).
//!
//! The model is the classic subarray decomposition: the bit array is
//! partitioned into subarrays of at most 128 rows × 256 columns; a read
//! decodes a row, swings the wordline, discharges the selected subarray's
//! bitlines by a reduced sense swing, fires sense amps, and drives the
//! result out. Writes swing the written columns full-rail. Leakage is the
//! 6T subthreshold estimate times [`calib::SRAM_LEAKAGE_MULT`]
//! (documented there).

use crate::calib;
use crate::stdcell::StdCellLib;
use crate::units::{Farads, Joules, SquareMeters, Watts};

/// Geometry of one SRAM-based cache structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total data capacity in *bits* (for a cache: bytes × 8; for a
    /// directory: entries × entry bits).
    pub data_bits: u64,
    /// Tag + state bits stored alongside each row's data (0 for
    /// structures whose `data_bits` already include everything).
    pub tag_bits: u64,
    /// Number of addressable rows (sets × ways for a serial-access model).
    pub rows: u64,
    /// Bits read or written per access.
    pub access_bits: u64,
}

impl CacheGeometry {
    /// A set-associative cache: `capacity` bytes, `assoc` ways, `line`
    /// bytes per line, with tags for a 64-bit physical address space.
    pub fn set_associative(capacity_bytes: u64, assoc: u64, line_bytes: u64) -> Self {
        assert!(capacity_bytes.is_multiple_of(assoc * line_bytes));
        let lines = capacity_bytes / line_bytes;
        let sets = lines / assoc;
        let offset_bits = u64::from(line_bytes.trailing_zeros());
        let index_bits = u64::from(sets.trailing_zeros());
        let tag = 64 - offset_bits - index_bits + 2; // +2 state bits (MSI)
        CacheGeometry {
            data_bits: capacity_bytes * 8,
            tag_bits: lines * tag,
            rows: sets,
            // an access reads the selected set: `assoc` tags + one line
            access_bits: line_bytes * 8 + assoc * tag,
        }
    }

    /// The paper's 32 KB L1 (I or D): 4-way, 64-byte lines.
    pub fn l1_32k() -> Self {
        Self::set_associative(32 * 1024, 4, 64)
    }

    /// The paper's 256 KB private L2: 8-way, 64-byte lines.
    pub fn l2_256k() -> Self {
        Self::set_associative(256 * 1024, 8, 64)
    }

    /// A directory slice tracking `entries` cache lines with `k` hardware
    /// sharer pointers (ACKwise_k / Dir_kB).
    ///
    /// Pointer storage saturates at a full-map bit vector: `min(k·⌈log2
    /// cores⌉, cores)` bits, which is what makes ACKwise with small `k`
    /// cheap and `k = cores` equivalent to full-map (paper Figs. 15/16).
    pub fn directory(entries: u64, k: u64, cores: u64) -> Self {
        let ptr_bits = (64 - u64::from((cores - 1).leading_zeros())).max(1);
        let sharer_bits = (k * ptr_bits).min(cores);
        // entry: ~40-bit tag + 4 state/global bits + sharer field +
        // 16-bit broadcast sequence number (ATAC+ §IV-C).
        let entry_bits = 40 + 4 + sharer_bits + 16;
        CacheGeometry {
            data_bits: entries * entry_bits,
            tag_bits: 0,
            rows: entries,
            access_bits: entry_bits,
        }
    }

    /// Total stored bits.
    pub fn total_bits(&self) -> u64 {
        self.data_bits + self.tag_bits
    }
}

/// Characterized SRAM structure.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// Geometry this model was built for.
    pub geometry: CacheGeometry,
    /// Dynamic energy of one read access.
    pub read_energy: Joules,
    /// Dynamic energy of one write access.
    pub write_energy: Joules,
    /// Static leakage power.
    pub leakage: Watts,
    /// Clock/precharge power burnt every cycle even without an access
    /// (ungated-clock NDD contributor) at 1 GHz.
    pub idle_clock_power: Watts,
    /// Layout area (cells + periphery).
    pub area: SquareMeters,
}

impl CacheModel {
    /// Maximum subarray dimensions (CACTI-style partitioning).
    const SUBARRAY_ROWS: u64 = 128;
    const SUBARRAY_COLS: u64 = 256;

    /// Build the model from the standard-cell library.
    pub fn new(lib: &StdCellLib, geometry: CacheGeometry) -> Self {
        let tech = &lib.tech;
        let vdd = tech.vdd;
        let total_bits = geometry.total_bits();

        // ---- Partitioning: how tall is one subarray's bitline?
        let rows_per_sub = geometry.rows.clamp(1, Self::SUBARRAY_ROWS);
        let cell_height = 2.0 * tech.min_wire_pitch.value(); // bitline run per cell
        let cell_width = 2.0 * tech.min_wire_pitch.value();

        // Per-cell bitline loading: drain cap of the access transistor +
        // wire capacitance of the cell-height bitline segment.
        let bl_cell_cap =
            tech.drain_cap(tech.min_device_width).value() + 0.2e-12 / 1e-3 * cell_height; // same 0.2 pF/mm wire constant
        let bitline_cap = Farads(rows_per_sub as f64 * bl_cell_cap);
        // Reads swing bitlines by a reduced sense swing (~0.1·VDD);
        // precharge restores it: energy per column = C · VDD · ΔV.
        let sense_swing = 0.1 * vdd.value();
        let read_col_energy = Joules(bitline_cap.value() * vdd.value() * sense_swing);
        // Writes swing the written columns full rail.
        let write_col_energy = Joules(bitline_cap.value() * vdd.value() * vdd.value());

        // Wordline: one row of cells' access-gate caps + the row wire.
        let cols_per_sub = geometry.access_bits.clamp(1, Self::SUBARRAY_COLS);
        let wl_cap = Farads(
            cols_per_sub as f64
                * (2.0 * tech.gate_cap(tech.min_device_width).value() + 0.2e-9 * cell_width),
        );
        let wordline_energy = wl_cap.switching_energy(vdd);

        // Decoder: ~log2(rows) stages of a few gates driving the wordline
        // driver; approximate with gate count × NAND energy.
        let dec_levels = f64::from(64 - (geometry.rows.max(2) - 1).leading_zeros());
        let decoder_energy =
            Joules(dec_levels * 8.0 * lib.nand2.switch_energy(vdd, lib.nand2.input_cap).value());

        // Sense amps + output drivers: per accessed bit.
        let sense_energy = Joules(
            geometry.access_bits as f64
                * 2.0
                * lib.inv.switch_energy(vdd, lib.inv.input_cap).value(),
        );

        let n_cols_accessed = geometry.access_bits as f64;
        let read_energy = Joules(
            decoder_energy.value()
                + wordline_energy.value() * (n_cols_accessed / cols_per_sub as f64).ceil()
                + n_cols_accessed * read_col_energy.value() * 2.0 // true+complement bitlines
                + sense_energy.value(),
        );
        let write_energy = Joules(
            decoder_energy.value()
                + wordline_energy.value() * (n_cols_accessed / cols_per_sub as f64).ceil()
                + n_cols_accessed * calib::DATA_ACTIVITY * write_col_energy.value()
                + sense_energy.value() * 0.5,
        );

        // ---- Static.
        let per_cell_leak = lib.sram_bitcell.leakage.value();
        let leakage = Watts(total_bits as f64 * per_cell_leak * calib::SRAM_LEAKAGE_MULT);
        let idle_clock_power =
            Watts(read_energy.value() * calib::CACHE_IDLE_CLOCK_FRACTION * 1.0e9);

        // ---- Area: cells + 60 % periphery overhead (decoders, sense,
        // repeaters, ECC) — the McPAT-class layout adder.
        let area = SquareMeters(total_bits as f64 * lib.sram_bitcell.area.value() * 1.6);

        CacheModel {
            geometry,
            read_energy,
            write_energy,
            leakage,
            idle_clock_power,
            area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::pj;

    fn lib() -> StdCellLib {
        StdCellLib::tri_gate_11nm()
    }

    #[test]
    fn l1_read_energy_low_picojoules() {
        let m = CacheModel::new(&lib(), CacheGeometry::l1_32k());
        assert!(m.read_energy > pj(0.2), "{}", m.read_energy);
        assert!(m.read_energy < pj(10.0), "{}", m.read_energy);
    }

    #[test]
    fn l2_costs_more_than_l1() {
        let l = lib();
        let l1 = CacheModel::new(&l, CacheGeometry::l1_32k());
        let l2 = CacheModel::new(&l, CacheGeometry::l2_256k());
        assert!(l2.read_energy > l1.read_energy);
        assert!(l2.leakage > l1.leakage);
        assert!(l2.area > l1.area);
    }

    #[test]
    fn l2_leakage_milliwatt_scale() {
        // Calibration target (see calib::SRAM_LEAKAGE_MULT): a 256 KB L2
        // leaks ~1–5 mW so that L2 energy splits roughly evenly between
        // leakage and dynamic on SPLASH-class runs, as the paper reports.
        let m = CacheModel::new(&lib(), CacheGeometry::l2_256k());
        assert!(m.leakage.value() > 0.5e-3, "{}", m.leakage);
        assert!(m.leakage.value() < 8e-3, "{}", m.leakage);
    }

    #[test]
    fn directory_entry_width_saturates_at_full_map() {
        let d4 = CacheGeometry::directory(4096, 4, 1024);
        let d1024 = CacheGeometry::directory(4096, 1024, 1024);
        let d2048 = CacheGeometry::directory(4096, 2048, 1024);
        assert!(d1024.total_bits() > d4.total_bits());
        // beyond full map, no further growth
        assert_eq!(d1024.total_bits(), d2048.total_bits());
    }

    #[test]
    fn sharer_scaling_doubles_sram_footprint() {
        // Paper Figs. 15/16: total area/energy roughly 2× from k=4 to
        // k=1024, driven by the directory. Check the SRAM bit budget.
        let per_core_base =
            CacheGeometry::l1_32k().total_bits() * 2 + CacheGeometry::l2_256k().total_bits();
        let dir4 = CacheGeometry::directory(4096, 4, 1024).total_bits();
        let dir1024 = CacheGeometry::directory(4096, 1024, 1024).total_bits();
        let ratio = (per_core_base + dir1024) as f64 / (per_core_base + dir4) as f64;
        assert!(ratio > 1.6, "ratio {ratio}");
        assert!(ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn per_core_cache_area_fraction_dominates() {
        // Fig. 10: caches ≈ 90 % of chip area (network is the rest).
        let l = lib();
        let cache_area = CacheModel::new(&l, CacheGeometry::l1_32k()).area.value() * 2.0
            + CacheModel::new(&l, CacheGeometry::l2_256k()).area.value()
            + CacheModel::new(&l, CacheGeometry::directory(4096, 4, 1024))
                .area
                .value();
        // vs a router + links per tile (rough: routers are ~10^-9 m²)
        let tile_network = 4e-9;
        let frac = cache_area / (cache_area + tile_network);
        assert!(frac > 0.85, "cache fraction {frac}");
    }

    #[test]
    fn write_and_read_energies_same_order() {
        let m = CacheModel::new(&lib(), CacheGeometry::l2_256k());
        let ratio = m.write_energy / m.read_energy;
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn idle_clock_power_is_small_fraction_of_active() {
        let m = CacheModel::new(&lib(), CacheGeometry::l2_256k());
        // active at 1 access/ns would be read_energy × 1e9
        let active = m.read_energy.value() * 1e9;
        assert!(m.idle_clock_power.value() < 0.1 * active);
    }
}
