//! Electrical network component models (DSENT-style).
//!
//! A wormhole mesh router decomposes into input buffers (flip-flop FIFOs at
//! these shallow depths), a crossbar, switch arbiters, and clocking. Each
//! is expressed in standard-cell counts from [`crate::stdcell`]; links use
//! [`crate::wires`]. The output of this module is a small set of
//! *per-event energies* and *static powers* that `atac-sim` multiplies with
//! event counters:
//!
//! * `buffer_write_energy` / `buffer_read_energy` — per flit
//! * `crossbar_energy` — per flit traversal
//! * `arbitration_energy` — per head flit
//! * `link_energy` — per flit per hop
//! * `leakage` / `clock_power` — static, × runtime

use crate::calib;
use crate::stdcell::StdCellLib;
use crate::units::{Joules, Meters, SquareMeters, Watts};
use crate::wires::WireModel;

/// Parameters of an electrical wormhole router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterParams {
    /// Number of ports (5 for a mesh: N/S/E/W/local).
    pub ports: usize,
    /// Flit width in bits.
    pub flit_width: usize,
    /// Input buffer depth in flits per port.
    pub buffer_depth: usize,
}

impl RouterParams {
    /// The paper's mesh router: 5 ports, 64-bit flits, 4-flit buffers.
    pub fn mesh_default() -> Self {
        RouterParams {
            ports: 5,
            flit_width: 64,
            buffer_depth: 4,
        }
    }
}

/// Characterized electrical router.
#[derive(Debug, Clone)]
pub struct RouterModel {
    /// Parameters this model was built for.
    pub params: RouterParams,
    /// Energy to write one flit into an input buffer.
    pub buffer_write_energy: Joules,
    /// Energy to read one flit out of an input buffer.
    pub buffer_read_energy: Joules,
    /// Energy for one flit to traverse the crossbar.
    pub crossbar_energy: Joules,
    /// Energy of one switch-allocation decision (per head flit).
    pub arbitration_energy: Joules,
    /// Static leakage power of the whole router.
    pub leakage: Watts,
    /// Clock distribution power of the router's sequential state (an NDD
    /// contributor: burnt every cycle the router clock is ungated).
    pub clock_power: Watts,
    /// Layout area.
    pub area: SquareMeters,
}

impl RouterModel {
    /// Build a router model from the standard-cell library.
    pub fn new(lib: &StdCellLib, params: RouterParams) -> Self {
        let vdd = lib.tech.vdd;
        let act = calib::DATA_ACTIVITY;
        let bits = params.flit_width as f64;
        let ports = params.ports as f64;
        let depth = params.buffer_depth as f64;

        // --- Input buffers: DFF-based FIFOs (shallow depths favour flops
        // over SRAM at these sizes; DSENT makes the same choice < ~16
        // entries). A write toggles `act` of the flit's flops plus the
        // write-pointer decode; a read drives the read mux tree.
        let dff_write = lib.dff_write_energy();
        let buffer_write_energy = Joules(bits * act * dff_write.value() * 1.2); // +20% ptr/decode
                                                                                // Read: per bit, a `depth:1` mux tree = (depth-1) mux2 stages worth
                                                                                // of switched capacitance at activity `act`.
        let mux_e = lib.mux2.switch_energy(vdd, lib.mux2.input_cap);
        let buffer_read_energy = Joules(bits * act * (depth - 1.0).max(1.0) * mux_e.value() * 0.5);

        // --- Crossbar: `ports × ports` matrix; a traversal drives one
        // input bus across the crossbar span (~ports × flit-width wire
        // tracks) plus the pass-gate caps of `ports` cross-points.
        let xbar_span = Meters(
            ports * bits * lib.tech.min_wire_pitch.value() * 4.0, // crossbar wiring pitch
        );
        let wire = WireModel::semi_global(lib);
        let xbar_wire_e = wire.energy_per_bit(xbar_span); // per bit
        let xpoint_e = lib.mux2.switch_energy(vdd, lib.mux2.input_cap);
        let crossbar_energy =
            Joules(bits * act * (xbar_wire_e.value() * 0.5 + ports * 0.5 * xpoint_e.value()));

        // --- Switch arbiter: ports × (ports-1) grant matrix of a few
        // gates each, plus priority flops.
        let arb_gates = ports * (ports - 1.0) * 4.0;
        let arbitration_energy = Joules(
            arb_gates * lib.nand2.switch_energy(vdd, lib.nand2.input_cap).value() * 0.5
                + ports * lib.dff_write_energy().value(),
        );

        // --- Static: leakage of all buffer flops + crossbar + arbiter,
        // with a control overhead factor; clock power of all flops.
        let n_flops = ports * depth * bits + ports * 8.0; // data + control state
        let leakage =
            Watts(n_flops * lib.dff.leakage.value() * (1.0 + calib::ROUTER_CONTROL_OVERHEAD));
        let clock_power = Watts(n_flops * lib.dff_clock_energy().value() * 1.0e9); // 1 GHz

        let area = SquareMeters(
            n_flops * lib.dff.area.value() * 1.5 // flops + wiring
                + ports * ports * bits * lib.mux2.area.value(),
        );

        RouterModel {
            params,
            buffer_write_energy,
            buffer_read_energy,
            crossbar_energy,
            arbitration_energy,
            leakage,
            clock_power,
            area,
        }
    }

    /// Total dynamic energy of a flit fully traversing this router
    /// (buffer write + read + crossbar; arbitration charged separately per
    /// head flit).
    pub fn traversal_energy(&self) -> Joules {
        self.buffer_write_energy + self.buffer_read_energy + self.crossbar_energy
    }
}

/// Characterized inter-router link.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Flit width in bits.
    pub flit_width: usize,
    /// Physical length of one hop.
    pub hop_length: Meters,
    /// Energy for one flit to traverse one hop.
    pub flit_energy: Joules,
    /// Repeater leakage power per hop (per link direction).
    pub leakage: Watts,
    /// Repeater area per hop.
    pub area: SquareMeters,
}

impl LinkModel {
    /// Build a link model for hops of length `hop_length`.
    pub fn new(lib: &StdCellLib, flit_width: usize, hop_length: Meters) -> Self {
        let wire = WireModel::semi_global(lib);
        let per_bit = wire.energy_per_bit(hop_length);
        let flit_energy = Joules(flit_width as f64 * calib::DATA_ACTIVITY * per_bit.value());
        let leakage = Watts(flit_width as f64 * wire.leakage(hop_length).value());
        let area = SquareMeters(flit_width as f64 * wire.repeater_area(hop_length).value());
        LinkModel {
            flit_width,
            hop_length,
            flit_energy,
            leakage,
            area,
        }
    }

    /// A single mesh hop at the paper's tile size.
    pub fn mesh_hop(lib: &StdCellLib, flit_width: usize) -> Self {
        Self::new(lib, flit_width, Meters(calib::TILE_SIDE_M))
    }
}

/// Model of the per-cluster electrical *receive* networks: the ATAC BNet
/// (fan-out broadcast tree to all 16 cores) and the ATAC+ StarNet
/// (1:16 demux + point-to-point links).
///
/// Both have single-cycle latency (the paper: the cluster is small enough
/// for a flit to reach any core in a cycle at 11 nm). They differ only in
/// energy: a BNet always drives the full tree; a StarNet unicast drives
/// one demux path + one link (≈ 1/8th the BNet energy, per the paper), and
/// a StarNet broadcast drives all 16 links (≈ 2× the BNet, tolerable since
/// broadcasts are rare).
#[derive(Debug, Clone)]
pub struct ReceiveNetModel {
    /// Energy of delivering one flit on the BNet (always full fan-out).
    pub bnet_flit_energy: Joules,
    /// Energy of a unicast flit on the StarNet (demux + one link).
    pub starnet_unicast_energy: Joules,
    /// Energy of a broadcast flit on the StarNet (all 16 links).
    pub starnet_broadcast_energy: Joules,
    /// Leakage of either network's repeaters (per cluster, per net).
    pub leakage: Watts,
    /// Area per cluster of one receive network.
    pub area: SquareMeters,
}

impl ReceiveNetModel {
    /// Build the model for clusters of `cores_per_cluster` cores laid out
    /// in a square of `cluster_side` tiles on a side.
    pub fn new(lib: &StdCellLib, flit_width: usize, cores_per_cluster: usize) -> Self {
        let wire = WireModel::semi_global(lib);
        let n = cores_per_cluster as f64;
        let side = (n.sqrt()) * calib::TILE_SIDE_M;
        let act = calib::DATA_ACTIVITY;
        let bits = flit_width as f64;

        // BNet: a fanout tree whose total wire length is ~2× the cluster
        // H-tree span (≈ 2·n·tile/√n per level summed ≈ 3× cluster side
        // for 16 leaves) and drives all 16 leaf receivers.
        let bnet_wire = Meters(3.0 * side);
        let bnet_flit_energy = Joules(
            bits * act
                * (wire.energy_per_bit(bnet_wire).value() + n * lib.dff_write_energy().value()),
        );

        // StarNet unicast: demux (log2 n stages of mux cells per bit) +
        // one point-to-point link of ~half the cluster side + 1 receiver.
        let hop = Meters(0.5 * side);
        let demux_e = (n.log2())
            * lib
                .mux2
                .switch_energy(lib.tech.vdd, lib.mux2.input_cap)
                .value();
        let starnet_unicast_energy = Joules(
            bits * act
                * (wire.energy_per_bit(hop).value() + demux_e + lib.dff_write_energy().value()),
        );

        // StarNet broadcast: all 16 links (each ~avg half-side long).
        let starnet_broadcast_energy = Joules(n * starnet_unicast_energy.value());

        let leakage = Watts(bits * wire.leakage(bnet_wire).value());
        let area = SquareMeters(bits * wire.repeater_area(bnet_wire).value());

        ReceiveNetModel {
            bnet_flit_energy,
            starnet_unicast_energy,
            starnet_broadcast_energy,
            leakage,
            area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::pj;

    fn lib() -> StdCellLib {
        StdCellLib::tri_gate_11nm()
    }

    #[test]
    fn router_traversal_energy_sub_picojoule_scale() {
        // DSENT-class 11 nm 5-port 64-bit router: ~0.05–0.5 pJ/flit.
        let r = RouterModel::new(&lib(), RouterParams::mesh_default());
        let e = r.traversal_energy();
        assert!(e > pj(0.01), "{e}");
        assert!(e < pj(1.0), "{e}");
    }

    #[test]
    fn link_energy_about_a_picojoule_per_hop() {
        // 64 bits × ~0.7 mm at activity 0.5 ≈ 1–3 pJ.
        let l = LinkModel::mesh_hop(&lib(), 64);
        assert!(l.flit_energy > pj(0.5), "{}", l.flit_energy);
        assert!(l.flit_energy < pj(5.0), "{}", l.flit_energy);
    }

    #[test]
    fn link_dominates_router_dynamic_energy() {
        // The well-known result our distance-routing analysis depends on.
        let r = RouterModel::new(&lib(), RouterParams::mesh_default());
        let l = LinkModel::mesh_hop(&lib(), 64);
        assert!(l.flit_energy > r.traversal_energy());
    }

    #[test]
    fn wider_flits_cost_proportionally_more() {
        let l = lib();
        let e64 = LinkModel::mesh_hop(&l, 64).flit_energy.value();
        let e256 = LinkModel::mesh_hop(&l, 256).flit_energy.value();
        let ratio = e256 / e64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");

        let r64 = RouterModel::new(
            &l,
            RouterParams {
                flit_width: 64,
                ..RouterParams::mesh_default()
            },
        );
        let r256 = RouterModel::new(
            &l,
            RouterParams {
                flit_width: 256,
                ..RouterParams::mesh_default()
            },
        );
        assert!(r256.traversal_energy() > r64.traversal_energy() * 2.0);
        assert!(r256.leakage > r64.leakage * 2.0);
    }

    #[test]
    fn starnet_unicast_much_cheaper_than_bnet() {
        // Paper: StarNet unicast ≈ 1/8th of BNet flit energy.
        let m = ReceiveNetModel::new(&lib(), 64, 16);
        let ratio = m.bnet_flit_energy / m.starnet_unicast_energy;
        assert!(ratio > 3.0, "ratio {ratio}");
        assert!(ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn starnet_broadcast_about_twice_bnet() {
        // Paper: StarNet broadcast ≈ 2× BNet.
        let m = ReceiveNetModel::new(&lib(), 64, 16);
        let ratio = m.starnet_broadcast_energy / m.bnet_flit_energy;
        assert!(ratio > 1.0, "ratio {ratio}");
        assert!(ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn router_area_is_small_fraction_of_tile() {
        let r = RouterModel::new(&lib(), RouterParams::mesh_default());
        let tile = calib::TILE_SIDE_M * calib::TILE_SIDE_M;
        assert!(
            r.area.value() < 0.05 * tile,
            "router {} vs tile {tile}",
            r.area.value()
        );
    }

    #[test]
    fn deeper_buffers_increase_leakage_not_write_energy_much() {
        let l = lib();
        let shallow = RouterModel::new(
            &l,
            RouterParams {
                buffer_depth: 2,
                ..RouterParams::mesh_default()
            },
        );
        let deep = RouterModel::new(
            &l,
            RouterParams {
                buffer_depth: 8,
                ..RouterParams::mesh_default()
            },
        );
        assert!(deep.leakage > shallow.leakage);
        assert!(deep.buffer_write_energy == shallow.buffer_write_energy);
    }
}
