//! Electrical technology node models.
//!
//! The paper projects an **11 nm tri-gate** technology using the
//! virtual-source transport model of Khakifirooz et al. and the parasitic
//! capacitance model of Wei et al., summarized in Table III:
//!
//! | Parameter | Value |
//! |---|---|
//! | Supply voltage (VDD)            | 0.6 V |
//! | Gate length                     | 14 nm |
//! | Contacted gate pitch            | 44 nm |
//! | Gate cap / width                | 2.420 fF/µm |
//! | Drain cap / width               | 1.150 fF/µm |
//! | Effective on current / width    | 739 / 668 µA/µm (N/P) |
//! | Off current / width             | 1 nA/µm |
//!
//! [`TechNode`] stores these as fields and derives the quantities the
//! circuit models need (minimum-device capacitances, per-device leakage,
//! FO4-style delay estimates). High-threshold (HVT) devices are assumed,
//! as in the paper, because the 1 GHz clock is slow for the node.

use crate::units::{Amps, Farads, Meters, Seconds, SquareMeters, Volts};

/// An electrical CMOS technology node, in the style of a (much smaller)
/// DSENT technology file.
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Human-readable name, e.g. `"11nm tri-gate HVT"`.
    pub name: &'static str,
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Physical gate length.
    pub gate_length: Meters,
    /// Contacted gate pitch (the layout "grid" for device area estimates).
    pub contacted_gate_pitch: Meters,
    /// Minimum metal pitch for local wiring (used for cell area estimates).
    pub min_wire_pitch: Meters,
    /// Gate capacitance per unit device width.
    pub gate_cap_per_width: Farads, // per metre of width
    /// Drain (parasitic) capacitance per unit device width.
    pub drain_cap_per_width: Farads, // per metre of width
    /// Effective NMOS on-current per unit width.
    pub on_current_n: Amps, // per metre of width
    /// Effective PMOS on-current per unit width.
    pub on_current_p: Amps, // per metre of width
    /// Sub-threshold + gate leakage per unit width (HVT).
    pub off_current: Amps, // per metre of width
    /// Minimum usable device width (one fin's effective width at this node).
    pub min_device_width: Meters,
}

impl TechNode {
    /// The paper's projected 11 nm tri-gate node (Table III).
    ///
    /// `min_device_width` is the effective conduction width of a single
    /// fin: tri-gate conduction width ≈ 2·fin-height + fin-width; with a
    /// projected 18 nm fin height and 6 nm fin width this is ≈ 42 nm. The
    /// local wire pitch is taken as 1.5× the contacted gate pitch,
    /// consistent with scaled-interconnect projections.
    pub fn tri_gate_11nm() -> Self {
        TechNode {
            name: "11nm tri-gate HVT",
            vdd: Volts(0.6),
            gate_length: Meters(14e-9),
            contacted_gate_pitch: Meters(44e-9),
            min_wire_pitch: Meters(66e-9),
            gate_cap_per_width: Farads(2.420e-15 / 1e-6), // 2.420 fF/µm
            drain_cap_per_width: Farads(1.150e-15 / 1e-6), // 1.150 fF/µm
            on_current_n: Amps(739e-6 / 1e-6),            // 739 µA/µm
            on_current_p: Amps(668e-6 / 1e-6),            // 668 µA/µm
            off_current: Amps(1e-9 / 1e-6),               // 1 nA/µm
            min_device_width: Meters(42e-9),
        }
    }

    /// A 45 nm-class bulk node, used only by tests and ablation benches to
    /// check that the models scale sensibly with technology (bigger caps,
    /// higher VDD ⇒ more energy per event).
    pub fn bulk_45nm() -> Self {
        TechNode {
            name: "45nm bulk",
            vdd: Volts(1.0),
            gate_length: Meters(40e-9),
            contacted_gate_pitch: Meters(160e-9),
            min_wire_pitch: Meters(160e-9),
            gate_cap_per_width: Farads(1.7e-15 / 1e-6),
            drain_cap_per_width: Farads(1.0e-15 / 1e-6),
            on_current_n: Amps(1000e-6 / 1e-6),
            on_current_p: Amps(700e-6 / 1e-6),
            off_current: Amps(10e-9 / 1e-6),
            min_device_width: Meters(120e-9),
        }
    }

    /// Gate capacitance of a device of width `w`.
    #[inline]
    pub fn gate_cap(&self, w: Meters) -> Farads {
        Farads(self.gate_cap_per_width.value() * w.value())
    }

    /// Drain capacitance of a device of width `w`.
    #[inline]
    pub fn drain_cap(&self, w: Meters) -> Farads {
        Farads(self.drain_cap_per_width.value() * w.value())
    }

    /// Leakage current of a device of width `w` (HVT off-state).
    #[inline]
    pub fn leakage_current(&self, w: Meters) -> Amps {
        Amps(self.off_current.value() * w.value())
    }

    /// Input capacitance of a minimum-size inverter
    /// (NMOS of `min_device_width`, PMOS sized for drive balance).
    pub fn min_inverter_input_cap(&self) -> Farads {
        let wn = self.min_device_width;
        let wp = self.pmos_width_for(wn);
        Farads(self.gate_cap(wn).value() + self.gate_cap(wp).value())
    }

    /// Output (drain) capacitance of a minimum-size inverter.
    pub fn min_inverter_output_cap(&self) -> Farads {
        let wn = self.min_device_width;
        let wp = self.pmos_width_for(wn);
        Farads(self.drain_cap(wn).value() + self.drain_cap(wp).value())
    }

    /// PMOS width that matches the drive strength of an NMOS of width `wn`.
    #[inline]
    pub fn pmos_width_for(&self, wn: Meters) -> Meters {
        Meters(wn.value() * self.on_current_n.value() / self.on_current_p.value())
    }

    /// Approximate switching delay of a minimum inverter driving `load`:
    /// `t ≈ C·VDD / I_on` (virtual-source saturation approximation).
    pub fn inverter_delay(&self, load: Farads) -> Seconds {
        let i_on = Amps(self.on_current_n.value() * self.min_device_width.value());
        Seconds(load.value() * self.vdd.value() / i_on.value())
    }

    /// FO4 delay: a minimum inverter driving four copies of itself.
    pub fn fo4_delay(&self) -> Seconds {
        let load = Farads(
            4.0 * self.min_inverter_input_cap().value() + self.min_inverter_output_cap().value(),
        );
        self.inverter_delay(load)
    }

    /// Layout area of a single transistor pair (one p/n device site):
    /// contacted gate pitch × (device width + diffusion spacing). Used for
    /// coarse logic-area estimates.
    pub fn device_site_area(&self) -> SquareMeters {
        let height = Meters(self.min_device_width.value() * 4.0);
        self.contacted_gate_pitch * height
    }

    /// Leakage power of a minimum inverter (one device leaking at a time,
    /// averaged over input states).
    pub fn min_inverter_leakage(&self) -> crate::units::Watts {
        let wn = self.min_device_width;
        let wp = self.pmos_width_for(wn);
        let avg_leak =
            Amps(0.5 * (self.leakage_current(wn).value() + self.leakage_current(wp).value()));
        avg_leak * self.vdd
    }
}

/// Quick sanity numbers exposed for documentation and the `tables` binary.
impl TechNode {
    /// Switching energy of a minimum inverter (input + output cap, full
    /// transition pair).
    pub fn min_inverter_switch_energy(&self) -> crate::units::Joules {
        let c =
            Farads(self.min_inverter_input_cap().value() + self.min_inverter_output_cap().value());
        c.switching_energy(self.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{um, Joules};

    #[test]
    fn table_iii_values_survive() {
        let t = TechNode::tri_gate_11nm();
        assert_eq!(t.vdd, Volts(0.6));
        assert!((t.gate_cap(um(1.0)).value() - 2.420e-15).abs() < 1e-21);
        assert!((t.drain_cap(um(1.0)).value() - 1.150e-15).abs() < 1e-21);
        assert!((t.leakage_current(um(1.0)).value() - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn min_inverter_energy_is_tens_of_zeptojoules() {
        // At 11 nm / 0.6 V a minimum inverter switch should cost on the
        // order of 0.05–0.2 fJ — the scale all our gate models build on.
        let t = TechNode::tri_gate_11nm();
        let e = t.min_inverter_switch_energy();
        assert!(e > Joules(0.02e-15), "too small: {e}");
        assert!(e < Joules(0.5e-15), "too large: {e}");
    }

    #[test]
    fn pmos_upsized_for_weaker_drive() {
        let t = TechNode::tri_gate_11nm();
        let wp = t.pmos_width_for(Meters(42e-9));
        assert!(wp.value() > 42e-9);
        assert!(wp.value() < 2.0 * 42e-9);
    }

    #[test]
    fn fo4_delay_is_low_picoseconds() {
        let t = TechNode::tri_gate_11nm();
        let d = t.fo4_delay();
        assert!(d.value() > 1e-13, "{d}");
        assert!(d.value() < 3e-11, "{d}");
    }

    #[test]
    fn node_scaling_direction() {
        // 45 nm must cost more energy per inverter switch than 11 nm.
        let new = TechNode::tri_gate_11nm().min_inverter_switch_energy();
        let old = TechNode::bulk_45nm().min_inverter_switch_energy();
        assert!(old > new);
        // and leak more per minimum inverter.
        assert!(
            TechNode::bulk_45nm().min_inverter_leakage()
                > TechNode::tri_gate_11nm().min_inverter_leakage()
        );
    }

    #[test]
    fn hvt_leakage_is_tiny() {
        let t = TechNode::tri_gate_11nm();
        // a min inverter should leak well under a nanowatt at HVT.
        assert!(t.min_inverter_leakage().value() < 1e-9);
    }
}
