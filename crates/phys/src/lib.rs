//! # atac-phys — device, circuit and memory physical models
//!
//! This crate is the reproduction's substitute for the authors' use of
//! **DSENT** (electrical + photonic circuit energy/area/timing) and
//! **McPAT** (cache/core area and power). It turns the paper's technology
//! tables into *per-event energies*, *static powers* and *areas* that the
//! full-system simulator (`atac-sim`) multiplies with event counters.
//!
//! Layers, bottom-up:
//!
//! * [`units`] — thin newtypes over `f64` for SI quantities (J, W, s, m, F,
//!   V, A, dB) so model code cannot accidentally mix units.
//! * [`tech`] — the projected 11 nm tri-gate electrical technology node
//!   (paper Table III) plus derived quantities (min-device capacitances,
//!   leakage currents, wire parasitics).
//! * [`stdcell`] — a tiny standard-cell library (INV/NAND/NOR/DFF/SRAM
//!   bitcell) synthesized from [`tech`], in the spirit of DSENT's
//!   standard-cell bootstrapping.
//! * [`wires`] — repeated global/semi-global wire energy & delay models.
//! * [`electrical`] — on-chip router, link, clock-tree and hub energy
//!   models composed from [`stdcell`] and [`wires`].
//! * [`photonics`] — nanophotonic link model (paper Table II): loss
//!   budgets, laser wall-plug power per mode (idle / unicast / broadcast),
//!   ring thermal tuning, modulator/receiver energies. Implements the four
//!   technology flavors of Table IV.
//! * [`serdes`] — serializer/deserializer overheads for wide optical
//!   flits (the §V-D area-vs-energy/latency tradeoff).
//! * [`cache_model`] — mini-CACTI/McPAT SRAM model: area, per-access
//!   dynamic energy and leakage for the L1-I/L1-D/L2/directory caches.
//! * [`core_model`] — the paper §V-G first-order in-order core power model
//!   (20 mW peak, configurable non-data-dependent fraction).
//!
//! All models are deterministic pure functions of their parameter structs;
//! every constant that is a *calibration* rather than a published parameter
//! is defined in [`calib`] with a comment explaining its provenance.

pub mod cache_model;
pub mod calib;
pub mod core_model;
pub mod electrical;
pub mod photonics;
pub mod serdes;
pub mod stdcell;
pub mod tech;
pub mod units;
pub mod wires;

pub use cache_model::{CacheGeometry, CacheModel};
pub use core_model::CorePowerModel;
pub use electrical::{LinkModel, RouterModel, RouterParams};
pub use photonics::{OpticalLinkModel, PhotonicParams, PhotonicScenario};
pub use tech::TechNode;
