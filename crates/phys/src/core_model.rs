//! First-order in-order core power model (paper §V-G).
//!
//! The paper deliberately uses a *simple* core model: a 20 mW peak power
//! for the single-issue in-order core (obtained by scaling the
//! Galal-Horowitz FPU energy/flop to 11 nm and dividing by the FPU's
//! typical share of core power), split into a **non-data-dependent (NDD)**
//! part — leakage and ungated clocks, burnt every cycle regardless of
//! activity — and a **data-dependent (DD)** part scaled by the measured
//! IPC. Two NDD scenarios are studied: 10 % and 40 % of peak.
//!
//! The paper's closing insight depends on this model: because core NDD
//! power dominates the chip, a faster network reduces *core* energy by
//! shortening runtime, even if the network itself is not the most
//! energy-efficient component.

use crate::units::{Joules, Seconds, Watts};

/// First-order core power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerModel {
    /// Peak power of one core (paper: 20 mW at 11 nm).
    pub peak_power: Watts,
    /// Fraction of peak that is non-data-dependent (paper: 0.1 or 0.4).
    pub ndd_fraction: f64,
}

impl CorePowerModel {
    /// The paper's model with the given NDD fraction.
    pub fn paper(ndd_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&ndd_fraction));
        CorePowerModel {
            peak_power: Watts(20e-3),
            ndd_fraction,
        }
    }

    /// NDD energy of one core over `runtime` (burnt regardless of IPC).
    pub fn ndd_energy(&self, runtime: Seconds) -> Joules {
        self.peak_power * self.ndd_fraction * runtime
    }

    /// DD energy of one core over `runtime` at the measured `ipc`
    /// ("if the IPC is 0.25, the runtime data-dependent power is 25 % of
    /// the peak data-dependent power").
    pub fn dd_energy(&self, runtime: Seconds, ipc: f64) -> Joules {
        assert!(
            (0.0..=1.0).contains(&ipc),
            "in-order single-issue IPC ≤ 1, got {ipc}"
        );
        self.peak_power * (1.0 - self.ndd_fraction) * ipc * runtime
    }

    /// Total core energy.
    pub fn total_energy(&self, runtime: Seconds, ipc: f64) -> Joules {
        self.ndd_energy(runtime) + self.dd_energy(runtime, ipc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndd_energy_independent_of_ipc() {
        let m = CorePowerModel::paper(0.4);
        let t = Seconds(1e-3);
        assert_eq!(m.ndd_energy(t), m.peak_power * 0.4 * t);
        // total differs with ipc, ndd does not
        assert!(m.total_energy(t, 0.9) > m.total_energy(t, 0.1));
    }

    #[test]
    fn dd_energy_scales_with_ipc() {
        let m = CorePowerModel::paper(0.1);
        let t = Seconds(1e-3);
        let e25 = m.dd_energy(t, 0.25);
        let e50 = m.dd_energy(t, 0.5);
        assert!((e50.value() / e25.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_run_burns_less_ndd() {
        // The paper's headline mechanism: completion time drives NDD.
        let m = CorePowerModel::paper(0.4);
        assert!(m.ndd_energy(Seconds(2e-3)) > m.ndd_energy(Seconds(1e-3)));
    }

    #[test]
    fn peak_power_bound() {
        let m = CorePowerModel::paper(0.4);
        let t = Seconds(1.0);
        let e = m.total_energy(t, 1.0);
        assert!((e.value() - m.peak_power.value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "IPC")]
    fn superscalar_ipc_rejected() {
        let m = CorePowerModel::paper(0.1);
        let _ = m.dd_energy(Seconds(1.0), 1.5);
    }
}
