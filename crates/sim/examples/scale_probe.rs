use atac_sim::{run, SimConfig};
use atac_workloads::{Benchmark, Scale};
use std::time::Instant;

fn main() {
    for b in [
        Benchmark::OceanContig,
        Benchmark::Barnes,
        Benchmark::Radix,
        Benchmark::DynamicGraph,
        Benchmark::LuContig,
    ] {
        let cfg = SimConfig::default();
        let w = b.build(1024, Scale::Paper);
        let t = Instant::now();
        let r = run(&cfg, &w);
        println!(
            "{:18} cycles={:9} instrs={:10} ipc={:.3} bcasts={:6} load={:.4} wall={:.1}s",
            b.name(),
            r.cycles,
            r.instructions,
            r.ipc,
            r.coh.inv_broadcasts,
            r.net.offered_load(1024),
            t.elapsed().as_secs_f64()
        );
    }
}
