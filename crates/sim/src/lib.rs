//! # atac-sim — execution-driven full-system simulator
//!
//! The reproduction's Graphite substitute: runs the `atac-workloads`
//! application kernels on 1024 in-order single-issue cores (Table I) over
//! the `atac-coherence` memory subsystem and an `atac-net` interconnect,
//! then integrates event counters with the `atac-phys` device models into
//! a chip-level energy breakdown — the paper's §V-A toolflow, end to end.
//!
//! * [`config`] — run configuration ([`config::SimConfig`]) covering the
//!   paper's architecture matrix (EMesh-Pure / EMesh-BCast / ATAC /
//!   ATAC+), the Table IV photonic scenarios, flit-width and protocol
//!   sweeps.
//! * [`engine`] — the cycle-driven (+ idle skip-ahead) simulation loop
//!   with execution-driven back-pressure; produces
//!   [`engine::SimResult`].
//! * [`energy`] — the cross-layer energy integration
//!   ([`energy::EnergyBreakdown`]) with the paper's DD/NDD split.
//!
//! Observability: [`engine::run_with_probe`] threads an
//! `atac_trace::ProbeHandle` through the network, coherence and engine
//! layers and (optionally) drives an epoch sampler; [`engine::run`] is
//! the same loop with a disabled probe and is bit-identical to it.
//! [`engine::run_profiled`] additionally threads an
//! `atac_trace::HostProfiler` through the loop so sweeps can attribute
//! the *host* wall-clock seconds to simulator phases; profiled runs are
//! likewise bit-identical in simulated results.
pub mod config;
pub mod energy;
pub mod engine;

pub use atac_trace::{
    HostPhase, HostProfile, HostProfiler, NetObsHandle, NetProfile, NetSubPhase, ProbeHandle,
    TraceCollector,
};
pub use config::{Arch, SimConfig};
pub use energy::EnergyBreakdown;
pub use engine::{run, run_observed, run_profiled, run_with_probe, SimResult};

// Send-safety audit for the parallel sweep executor (atac-bench): a
// sweep shares one `SimConfig` and one immutably-built workload across
// worker threads, and ships `SimResult`s back. These types are plain
// data today; the asserts turn an accidental `Rc`/`RefCell`/raw-pointer
// field added later into a compile error at the layer that owns the
// contract instead of a cryptic one inside the executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimConfig>();
    assert_send_sync::<SimResult>();
    assert_send_sync::<EnergyBreakdown>();
    assert_send_sync::<atac_workloads::BuiltWorkload>();
};
