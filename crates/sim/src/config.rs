//! Full-system simulation configuration (the knobs of the paper's
//! Tables I–IV plus the sweep parameters of §V).

use atac_coherence::ProtocolKind;
use atac_net::{AtacNet, Mesh, MeshKind, Network, ReceiveNet, RoutingPolicy, Topology};
use atac_phys::PhotonicScenario;

/// Which interconnect architecture to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Plain electrical mesh (broadcasts become serialized unicasts).
    EMeshPure,
    /// Electrical mesh with router multicast.
    EMeshBcast,
    /// ATAC family: ENet + ONet with the given routing policy and
    /// receive network. Baseline ATAC is `(Cluster, BNet)`; ATAC+ is
    /// `(Distance(15), StarNet)`.
    Atac(RoutingPolicy, ReceiveNet),
}

impl Arch {
    /// The paper's ATAC+ configuration (§V-E: Distance-15 + StarNet).
    pub fn atac_plus() -> Self {
        Arch::Atac(RoutingPolicy::Distance(15), ReceiveNet::StarNet)
    }

    /// The baseline ATAC configuration (Cluster routing + BNet).
    pub fn atac_baseline() -> Self {
        Arch::Atac(RoutingPolicy::Cluster, ReceiveNet::BNet)
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Arch::EMeshPure => "EMesh-Pure".into(),
            Arch::EMeshBcast => "EMesh-BCast".into(),
            Arch::Atac(RoutingPolicy::Cluster, ReceiveNet::BNet) => "ATAC".into(),
            Arch::Atac(p, _) => format!("ATAC+ ({})", p.name()),
        }
    }

    /// Does this architecture use the optical network?
    pub fn is_optical(&self) -> bool {
        matches!(self, Arch::Atac(..))
    }
}

/// One full-system run's configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Chip topology (default: the paper's 32×32 = 1024 cores).
    pub topo: Topology,
    /// Interconnect architecture.
    pub arch: Arch,
    /// Flit width in bits (Table I: 64; Fig. 11 sweeps 16–256).
    pub flit_width: u32,
    /// Router input-buffer depth in flits.
    pub buffer_depth: usize,
    /// Coherence protocol (default ACKwise4; Fig. 14 compares Dir4B;
    /// Figs. 15/16 sweep k).
    pub protocol: ProtocolKind,
    /// Photonic technology flavor (Table IV) — affects energy only.
    pub scenario: PhotonicScenario,
    /// Core clock frequency in Hz (Table I: 1 GHz).
    pub frequency_hz: f64,
    /// Fraction of core peak power that is non-data-dependent
    /// (§V-G studies 0.1 and 0.4).
    pub core_ndd_fraction: f64,
    /// Override the worst-case ONet waveguide propagation loss in dB
    /// (Fig. 9 sweeps 0.2–4 dB); `None` uses the Table II default
    /// (0.2 dB/cm × the calibrated serpentine length).
    pub waveguide_loss_db: Option<f64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            topo: Topology::atac_1024(),
            arch: Arch::atac_plus(),
            flit_width: 64,
            buffer_depth: 4,
            protocol: ProtocolKind::AckWise { k: 4 },
            scenario: PhotonicScenario::Practical,
            frequency_hz: 1.0e9,
            core_ndd_fraction: 0.1,
            waveguide_loss_db: None,
        }
    }
}

impl SimConfig {
    /// A small-chip config for fast tests (64 cores, 4 clusters).
    pub fn small() -> Self {
        SimConfig {
            topo: Topology::small(8, 4),
            ..Default::default()
        }
    }

    /// Instantiate the configured network.
    pub fn build_network(&self) -> Box<dyn Network> {
        match self.arch {
            Arch::EMeshPure => Box::new(Mesh::new(
                self.topo,
                MeshKind::Pure,
                self.flit_width,
                self.buffer_depth,
            )),
            Arch::EMeshBcast => Box::new(Mesh::new(
                self.topo,
                MeshKind::BcastTree,
                self.flit_width,
                self.buffer_depth,
            )),
            Arch::Atac(policy, recv) => Box::new(AtacNet::new(
                self.topo,
                self.flit_width,
                self.buffer_depth,
                policy,
                recv,
            )),
        }
    }

    /// Seconds per clock cycle.
    pub fn cycle_time(&self) -> atac_phys::units::Seconds {
        atac_phys::units::Seconds(1.0 / self.frequency_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_tables() {
        let c = SimConfig::default();
        assert_eq!(c.topo.cores(), 1024);
        assert_eq!(c.flit_width, 64);
        assert_eq!(c.frequency_hz, 1.0e9);
        assert_eq!(c.protocol, ProtocolKind::AckWise { k: 4 });
    }

    #[test]
    fn arch_names() {
        assert_eq!(Arch::EMeshPure.name(), "EMesh-Pure");
        assert_eq!(Arch::EMeshBcast.name(), "EMesh-BCast");
        assert_eq!(Arch::atac_baseline().name(), "ATAC");
        assert!(Arch::atac_plus().name().starts_with("ATAC+"));
    }

    #[test]
    fn builds_all_networks() {
        for arch in [
            Arch::EMeshPure,
            Arch::EMeshBcast,
            Arch::atac_plus(),
            Arch::atac_baseline(),
        ] {
            let cfg = SimConfig {
                arch,
                ..SimConfig::small()
            };
            let net = cfg.build_network();
            assert_eq!(net.cores(), 64);
            assert_eq!(net.flit_width(), 64);
        }
    }
}
