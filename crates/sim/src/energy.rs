//! Energy integration: event counters × per-event energies + static
//! power × completion time.
//!
//! This implements the paper's §V-A toolflow step: "Event counters and
//! completion time output from Graphite are then combined with per-event
//! energies and static power to obtain the overall energy usage of the
//! benchmark." Per-event energies and static powers come from
//! `atac-phys` (our DSENT/McPAT substitute); counters come from
//! `atac-net` and `atac-coherence`.
//!
//! Every component's energy is split into **data-dependent (DD)** —
//! proportional to events — and **non-data-dependent (NDD)** — burnt per
//! cycle regardless of activity (leakage, ungated clocks, ring heaters,
//! un-gateable lasers). The NDD/DD distinction is the paper's central
//! analytical lens (§V-C, §V-G).

use atac_coherence::CoherenceStats;
use atac_net::NetStats;
use atac_phys::cache_model::{CacheGeometry, CacheModel};
use atac_phys::core_model::CorePowerModel;
use atac_phys::electrical::{LinkModel, ReceiveNetModel, RouterModel, RouterParams};
use atac_phys::photonics::{OpticalLinkModel, PhotonicParams, SwmrMode};
use atac_phys::stdcell::StdCellLib;
use atac_phys::units::{Joules, Seconds};

use crate::config::{Arch, SimConfig};
use atac_net::ReceiveNet;

/// Chip-level energy, by component, for one run.
///
/// Field groups follow the paper's Fig. 7 / Fig. 16 / Fig. 17 stack
/// categories.
#[derive(Debug, Clone, Default)]
pub struct EnergyBreakdown {
    // ---- network: electrical ----
    /// Mesh/ENet router + link dynamic energy.
    pub emesh_dynamic: Joules,
    /// Mesh/ENet router leakage + clock over the run (NDD).
    pub emesh_static: Joules,
    /// BNet/StarNet receive-network energy (dynamic + repeater leakage).
    pub receive_net: Joules,
    /// Hub buffering energy (dynamic + leakage share).
    pub hub: Joules,
    // ---- network: optical ----
    /// Laser wall-plug energy (mode-resident for gated scenarios;
    /// full-power × runtime for Conservative).
    pub laser: Joules,
    /// Ring thermal tuning energy (NDD; zero for athermal scenarios).
    pub ring_tuning: Joules,
    /// Modulators, receivers, select link, receiver bias ("Other" in
    /// Fig. 7).
    pub optical_other: Joules,
    // ---- memory subsystem ----
    /// L1 instruction caches, dynamic.
    pub l1i_dynamic: Joules,
    /// L1 instruction caches, leakage + idle clock (NDD).
    pub l1i_static: Joules,
    /// L1 data caches, dynamic.
    pub l1d_dynamic: Joules,
    /// L1 data caches, NDD.
    pub l1d_static: Joules,
    /// L2 caches, dynamic.
    pub l2_dynamic: Joules,
    /// L2 caches, NDD.
    pub l2_static: Joules,
    /// Directory caches, dynamic.
    pub dir_dynamic: Joules,
    /// Directory caches, NDD.
    pub dir_static: Joules,
    // ---- cores (first-order model, §V-G) ----
    /// Core data-dependent energy (scaled by IPC).
    pub core_dd: Joules,
    /// Core non-data-dependent energy (scaled by runtime only).
    pub core_ndd: Joules,
}

impl EnergyBreakdown {
    /// Total network energy (electrical + optical).
    pub fn network(&self) -> Joules {
        self.emesh_dynamic
            + self.emesh_static
            + self.receive_net
            + self.hub
            + self.laser
            + self.ring_tuning
            + self.optical_other
    }

    /// Total cache energy (L1-I + L1-D + L2 + directory).
    pub fn caches(&self) -> Joules {
        self.l1i_dynamic
            + self.l1i_static
            + self.l1d_dynamic
            + self.l1d_static
            + self.l2_dynamic
            + self.l2_static
            + self.dir_dynamic
            + self.dir_static
    }

    /// Core energy.
    pub fn cores(&self) -> Joules {
        self.core_dd + self.core_ndd
    }

    /// Network + caches — the paper's Fig. 7 scope.
    pub fn network_and_caches(&self) -> Joules {
        self.network() + self.caches()
    }

    /// Everything, including cores (Fig. 17 scope).
    pub fn total(&self) -> Joules {
        self.network_and_caches() + self.cores()
    }

    /// Every component field with its name — the single flat list the
    /// conservation audit sums. A field added to the struct but omitted
    /// here (or from the group sums above) trips
    /// [`assert_conservation`](Self::assert_conservation).
    pub fn components(&self) -> [(&'static str, Joules); 17] {
        [
            ("emesh_dynamic", self.emesh_dynamic),
            ("emesh_static", self.emesh_static),
            ("receive_net", self.receive_net),
            ("hub", self.hub),
            ("laser", self.laser),
            ("ring_tuning", self.ring_tuning),
            ("optical_other", self.optical_other),
            ("l1i_dynamic", self.l1i_dynamic),
            ("l1i_static", self.l1i_static),
            ("l1d_dynamic", self.l1d_dynamic),
            ("l1d_static", self.l1d_static),
            ("l2_dynamic", self.l2_dynamic),
            ("l2_static", self.l2_static),
            ("dir_dynamic", self.dir_dynamic),
            ("dir_static", self.dir_static),
            ("core_dd", self.core_dd),
            ("core_ndd", self.core_ndd),
        ]
    }

    /// Energy-conservation audit: every component is finite and
    /// non-negative, and the flat component sum equals [`total`](Self::total)
    /// (which is built from the group sums) to 1e-9 relative — so the
    /// group decomposition can never silently drop or double-count a
    /// component. Called from [`integrate`] behind `debug_assertions`.
    pub fn assert_conservation(&self) {
        let mut sum = 0.0;
        for (name, j) in self.components() {
            let v = j.value();
            debug_assert!(
                v.is_finite() && v >= 0.0,
                "energy component `{name}` is {v} (non-finite or negative)"
            );
            sum += v;
        }
        let total = self.total().value();
        let scale = total.abs().max(f64::MIN_POSITIVE);
        debug_assert!(
            ((sum - total) / scale).abs() <= 1e-9,
            "energy breakdown violates conservation: components sum to {sum} J \
             but total() reports {total} J"
        );
    }
}

/// Combine counters, models and completion time into the breakdown.
pub fn integrate(
    cfg: &SimConfig,
    net: &NetStats,
    coh: &CoherenceStats,
    cycles: u64,
    ipc: f64,
) -> EnergyBreakdown {
    let lib = StdCellLib::tri_gate_11nm();
    let runtime = Seconds(cycles as f64 / cfg.frequency_hz);
    let cycle_time = cfg.cycle_time();
    let n_cores = cfg.topo.cores();
    let n_clusters = cfg.topo.clusters();
    let mut e = EnergyBreakdown::default();

    // ------------------------------------------------------------------
    // Electrical mesh (EMesh or ENet): dynamic from counters, static from
    // router/link census.
    // ------------------------------------------------------------------
    let router = RouterModel::new(
        &lib,
        RouterParams {
            ports: 5,
            flit_width: cfg.flit_width as usize,
            buffer_depth: cfg.buffer_depth,
        },
    );
    let link = LinkModel::mesh_hop(&lib, cfg.flit_width as usize);
    e.emesh_dynamic = router.buffer_write_energy * net.buffer_writes as f64
        + router.buffer_read_energy * net.buffer_reads as f64
        + router.crossbar_energy * net.xbar_traversals as f64
        + router.arbitration_energy * net.arbitrations as f64
        + link.flit_energy * net.link_traversals as f64;
    let w = f64::from(cfg.topo.width);
    let h = f64::from(cfg.topo.height);
    let n_links = 2.0 * (w * (h - 1.0) + h * (w - 1.0)); // directed links
    e.emesh_static =
        ((router.leakage + router.clock_power) * n_cores as f64 + link.leakage * n_links) * runtime;

    // ------------------------------------------------------------------
    // Optical components (ATAC family only).
    // ------------------------------------------------------------------
    if let Arch::Atac(_, recv) = cfg.arch {
        let optics = match cfg.waveguide_loss_db {
            Some(db) => OpticalLinkModel::with_waveguide_loss(
                PhotonicParams::default(),
                cfg.scenario,
                n_clusters,
                cfg.flit_width as usize,
                atac_phys::units::Decibels(db),
            ),
            None => OpticalLinkModel::new(
                PhotonicParams::default(),
                cfg.scenario,
                n_clusters,
                cfg.flit_width as usize,
            ),
        };
        // Laser: mode-residency for gated scenarios; worst-case static
        // for the Conservative flavor.
        e.laser = if cfg.scenario.laser_power_gated() {
            optics.laser_energy(SwmrMode::Unicast, net.laser_unicast_cycles, cycle_time)
                + optics.laser_energy(SwmrMode::Broadcast, net.laser_broadcast_cycles, cycle_time)
                + optics.transition_energy() * net.laser_transitions as f64
        } else {
            (optics.broadcast_laser_power + optics.select_laser_power) * n_clusters as f64 * runtime
        };
        e.ring_tuning = optics.tuning_power() * runtime;
        e.optical_other = optics.flit_modulation_energy() * net.onet_flits_sent as f64
            + optics.flit_receive_energy(1) * net.onet_flit_receptions as f64
            + optics.select_notification_energy(cycle_time) * net.select_notifications as f64
            + optics.select_receiver_bias * runtime;

        // Receive networks: 2 per cluster; energy per flit by kind.
        let recv_model =
            ReceiveNetModel::new(&lib, cfg.flit_width as usize, cfg.topo.cores_per_cluster());
        e.receive_net = match recv {
            ReceiveNet::BNet => {
                recv_model.bnet_flit_energy
                    * (net.receive_net_unicast_flits + net.receive_net_broadcast_flits) as f64
            }
            ReceiveNet::StarNet => {
                recv_model.starnet_unicast_energy * net.receive_net_unicast_flits as f64
                    + recv_model.starnet_broadcast_energy * net.receive_net_broadcast_flits as f64
            }
        } + recv_model.leakage * (2 * n_clusters) as f64 * runtime;

        // Hub buffering: model as router-class buffer accesses + a
        // 6-port router's static budget per hub.
        let hub_router = RouterModel::new(
            &lib,
            RouterParams {
                ports: 6,
                flit_width: cfg.flit_width as usize,
                buffer_depth: 2 * cfg.buffer_depth,
            },
        );
        e.hub = hub_router.buffer_write_energy * net.hub_buffer_writes as f64
            + hub_router.buffer_read_energy * net.hub_buffer_reads as f64
            + (hub_router.leakage + hub_router.clock_power) * n_clusters as f64 * runtime;
    }

    // ------------------------------------------------------------------
    // Caches (mini-McPAT).
    // ------------------------------------------------------------------
    let l1 = CacheModel::new(&lib, CacheGeometry::l1_32k());
    let l2 = CacheModel::new(&lib, CacheGeometry::l2_256k());
    let dir = CacheModel::new(
        &lib,
        CacheGeometry::directory(4096, cfg.protocol.k() as u64, n_cores as u64),
    );
    e.l1i_dynamic = l1.read_energy * coh.l1i_accesses as f64;
    e.l1d_dynamic = l1.read_energy * coh.l1d_reads as f64 + l1.write_energy * coh.l1d_writes as f64;
    // L2 accesses are a read/write mix; fills and probes write.
    e.l2_dynamic = (l2.read_energy + l2.write_energy) * 0.5 * coh.l2_accesses as f64;
    e.dir_dynamic =
        dir.read_energy * coh.dir_lookups as f64 + dir.write_energy * coh.dir_updates as f64;
    let cache_static = |m: &CacheModel| (m.leakage + m.idle_clock_power) * n_cores as f64 * runtime;
    e.l1i_static = cache_static(&l1);
    e.l1d_static = cache_static(&l1);
    e.l2_static = cache_static(&l2);
    e.dir_static = cache_static(&dir);

    // ------------------------------------------------------------------
    // Cores (first-order model, §V-G).
    // ------------------------------------------------------------------
    let core = CorePowerModel::paper(cfg.core_ndd_fraction);
    e.core_ndd = core.ndd_energy(runtime) * n_cores as f64;
    e.core_dd = core.dd_energy(runtime, ipc.min(1.0)) * n_cores as f64;

    if cfg!(debug_assertions) {
        e.assert_conservation();
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use atac_phys::PhotonicScenario;

    fn base_counters() -> (NetStats, CoherenceStats) {
        let net = NetStats {
            buffer_writes: 100_000,
            buffer_reads: 100_000,
            xbar_traversals: 100_000,
            arbitrations: 40_000,
            link_traversals: 300_000,
            onet_flits_sent: 20_000,
            onet_flit_receptions: 60_000,
            select_notifications: 5_000,
            laser_unicast_cycles: 15_000,
            laser_broadcast_cycles: 5_000,
            receive_net_unicast_flits: 18_000,
            receive_net_broadcast_flits: 2_000,
            hub_buffer_writes: 40_000,
            hub_buffer_reads: 40_000,
            cycles: 500_000,
            ..Default::default()
        };
        let coh = CoherenceStats {
            l1i_accesses: 5_000_000,
            l1d_reads: 2_000_000,
            l1d_writes: 800_000,
            l2_accesses: 400_000,
            dir_lookups: 100_000,
            dir_updates: 60_000,
            ..Default::default()
        };
        (net, coh)
    }

    #[test]
    fn caches_dominate_network_plus_cache_energy() {
        // Paper §V-C: "for ATAC+ and the baseline mesh networks, the
        // cache energy dominates (>75%) the combined total energy."
        let cfg = SimConfig::default();
        let (net, coh) = base_counters();
        let e = integrate(&cfg, &net, &coh, 500_000, 0.3);
        let frac = e.caches() / e.network_and_caches();
        assert!(frac > 0.6, "cache fraction {frac}");
    }

    #[test]
    fn conservative_scenario_burns_laser() {
        let (net, coh) = base_counters();
        let mk = |s| SimConfig {
            scenario: s,
            ..SimConfig::default()
        };
        let gated = integrate(&mk(PhotonicScenario::Practical), &net, &coh, 500_000, 0.3);
        let cons = integrate(
            &mk(PhotonicScenario::Conservative),
            &net,
            &coh,
            500_000,
            0.3,
        );
        assert!(
            cons.laser.value() > 50.0 * gated.laser.value(),
            "cons {} vs gated {}",
            cons.laser,
            gated.laser
        );
        assert!(cons.ring_tuning.value() > 0.0);
        assert_eq!(gated.ring_tuning.value(), 0.0);
    }

    #[test]
    fn scenario_energy_ordering_matches_table_iv() {
        let (net, coh) = base_counters();
        let total = |s| {
            let cfg = SimConfig {
                scenario: s,
                ..SimConfig::default()
            };
            integrate(&cfg, &net, &coh, 500_000, 0.3).network().value()
        };
        let ideal = total(PhotonicScenario::Ideal);
        let practical = total(PhotonicScenario::Practical);
        let tuned = total(PhotonicScenario::RingTuned);
        let cons = total(PhotonicScenario::Conservative);
        assert!(ideal <= practical);
        assert!(practical < tuned);
        assert!(tuned < cons);
        // Fig. 7: ATAC+ ≈ ATAC+(Ideal) — within ~15 %.
        assert!(
            practical / ideal < 1.15,
            "practical/ideal {}",
            practical / ideal
        );
    }

    #[test]
    fn emesh_has_no_optical_terms() {
        let (net, coh) = base_counters();
        let cfg = SimConfig {
            arch: Arch::EMeshBcast,
            ..SimConfig::default()
        };
        let e = integrate(&cfg, &net, &coh, 500_000, 0.3);
        assert_eq!(e.laser.value(), 0.0);
        assert_eq!(e.ring_tuning.value(), 0.0);
        assert_eq!(e.optical_other.value(), 0.0);
        assert_eq!(e.receive_net.value(), 0.0);
        assert!(e.emesh_dynamic.value() > 0.0);
    }

    #[test]
    fn directory_energy_grows_with_sharers() {
        // Fig. 16's driver: directory cost scales with k.
        let (net, coh) = base_counters();
        let dirk = |k| {
            let cfg = SimConfig {
                protocol: atac_coherence::ProtocolKind::AckWise { k },
                ..SimConfig::default()
            };
            let e = integrate(&cfg, &net, &coh, 500_000, 0.3);
            (e.dir_dynamic + e.dir_static).value()
        };
        assert!(dirk(1024) > 3.0 * dirk(4));
    }

    #[test]
    fn longer_runtime_grows_ndd_not_dd() {
        let (net, coh) = base_counters();
        let cfg = SimConfig::default();
        let short = integrate(&cfg, &net, &coh, 500_000, 0.3);
        let long = integrate(&cfg, &net, &coh, 1_000_000, 0.3);
        assert_eq!(short.l2_dynamic.value(), long.l2_dynamic.value());
        assert!(long.l2_static.value() > 1.9 * short.l2_static.value());
        assert!(long.core_ndd.value() > 1.9 * short.core_ndd.value());
    }

    #[test]
    fn breakdown_components_match_group_sums() {
        let (net, coh) = base_counters();
        let e = integrate(&SimConfig::default(), &net, &coh, 500_000, 0.3);
        let sum: f64 = e.components().iter().map(|(_, j)| j.value()).sum();
        let total = e.total().value();
        assert!(total > 0.0);
        assert!(
            ((sum - total) / total).abs() < 1e-12,
            "sum {sum} total {total}"
        );
        e.assert_conservation();
    }

    #[test]
    #[should_panic(expected = "non-finite or negative")]
    fn conservation_audit_catches_bad_component() {
        let e = EnergyBreakdown {
            laser: Joules(-1.0),
            ..Default::default()
        };
        e.assert_conservation();
    }

    #[test]
    fn core_dominates_total_chip_energy() {
        // Fig. 17: "In all cases, the cache and network are dwarfed by
        // the core" — with the 40 % NDD scenario.
        let (net, coh) = base_counters();
        let cfg = SimConfig {
            core_ndd_fraction: 0.4,
            ..SimConfig::default()
        };
        let e = integrate(&cfg, &net, &coh, 500_000, 0.3);
        assert!(e.cores() > e.network_and_caches());
    }
}
