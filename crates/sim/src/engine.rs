//! The execution-driven full-system simulation loop.
//!
//! This is the reproduction's stand-in for Graphite: it runs a
//! [`BuiltWorkload`]'s per-core scripts on in-order single-issue cores
//! over the simulated memory hierarchy and network, with full
//! back-pressure — a core blocks on its cache miss until the coherence
//! transaction (and every network queue it crosses) completes, so network
//! latency propagates into application runtime exactly as the paper
//! requires of an execution-driven evaluation (§I's critique of
//! trace-driven studies).
//!
//! The loop is cycle-driven while any traffic is in flight and
//! *skip-ahead* otherwise: when the network is empty, no protocol
//! messages are queued, and every core is stalled with a known wake-up
//! time, the clock jumps straight to the next event. This keeps 1024-core
//! runs fast through the compute-heavy stretches.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use atac_coherence::{AccessResult, Addr, CoherenceStats, MemorySystem};
use atac_net::{CoreId, Cycle, Delivery, NetStats, Network};
use atac_phys::units::{JouleSeconds, Seconds};
use atac_trace::{
    AdvanceCause, EpochSample, HostPhase, HostProfiler, NetObsHandle, NetSubPhase, ProbeHandle,
    TxnEvent, TxnPhase,
};
use atac_workloads::{BuiltWorkload, Op};

use crate::config::SimConfig;
use crate::energy::{integrate, EnergyBreakdown};

/// Instruction bytes per cache line (4-byte instructions, 64-byte lines).
const INSTRS_PER_LINE: u64 = 16;
/// Per-core loop footprint in instruction-cache lines (8 KB of code —
/// resident in the 32 KB L1-I after warm-up, as real kernels are).
const CODE_LINES: u64 = 128;
/// Base of the (private, read-only) code region in the address space.
const CODE_BASE: u64 = 0xF000_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Will execute its next op when the clock reaches its heap entry.
    Scheduled,
    /// Waiting for an MSHR completion.
    BlockedOnMiss,
    /// Arrived at a barrier.
    AtBarrier,
    /// Script exhausted.
    Done,
}

struct CoreCtx {
    pc: usize,
    state: CoreState,
    instrs: u64,
}

/// The outcome of one full-system run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Application completion time in cycles.
    pub cycles: Cycle,
    /// Total instructions executed across all cores.
    pub instructions: u64,
    /// Average per-core IPC (≤ 1 for the in-order single-issue core).
    pub ipc: f64,
    /// Network event counters.
    pub net: atac_net::NetStats,
    /// Memory-subsystem event counters.
    pub coh: atac_coherence::CoherenceStats,
    /// Integrated energy breakdown.
    pub energy: EnergyBreakdown,
    /// Architecture name.
    pub arch: String,
    /// Workload name.
    pub workload: &'static str,
}

impl SimResult {
    /// Completion time in seconds.
    pub fn runtime(&self, cfg: &SimConfig) -> Seconds {
        cfg.cycle_time() * self.cycles as f64
    }

    /// Energy-delay product (the paper's headline metric, Fig. 8).
    pub fn edp(&self, cfg: &SimConfig) -> JouleSeconds {
        self.energy.total() * self.runtime(cfg)
    }
}

/// Run one workload on one configuration to completion.
pub fn run(cfg: &SimConfig, workload: &BuiltWorkload) -> SimResult {
    run_with_probe(cfg, workload, ProbeHandle::default(), None)
}

/// Run one workload with instrumentation attached.
///
/// `probe` receives message-delivery, optical-transmission and
/// coherence-transaction lifecycle events from every layer; if
/// `epoch_cycles` is `Some(n)` (and the probe is enabled) an epoch
/// sampler additionally emits counter-delta time-series samples every
/// `n` cycles. With a disabled probe this is exactly [`run`]: every
/// probe point is a single dead branch and the result is bit-identical.
pub fn run_with_probe(
    cfg: &SimConfig,
    workload: &BuiltWorkload,
    probe: ProbeHandle,
    epoch_cycles: Option<u64>,
) -> SimResult {
    run_profiled(cfg, workload, probe, epoch_cycles, HostProfiler::default())
}

/// Run one workload with instrumentation *and* host self-profiling.
///
/// `prof` is a lap-timeline handle: the engine (and, via a cloned
/// handle, the memory system) attributes every stretch of host wall
/// time to a [`HostPhase`], so a sweep can report where the simulator's
/// own seconds went. The caller keeps its clone and snapshots the
/// profile with [`HostProfiler::finish`] after the run. Like the probe,
/// the profiler is an observer — it reads the host clock, never
/// simulator state — so a profiled run is bit-identical in simulated
/// results to an unprofiled one (tested below). With both handles
/// disabled this is exactly [`run`].
pub fn run_profiled(
    cfg: &SimConfig,
    workload: &BuiltWorkload,
    probe: ProbeHandle,
    epoch_cycles: Option<u64>,
    prof: HostProfiler,
) -> SimResult {
    run_observed(
        cfg,
        workload,
        probe,
        epoch_cycles,
        prof,
        NetObsHandle::disabled(),
    )
}

/// Run one workload with the full observability stack: probe, host
/// profiler, *and* network observer.
///
/// `obs` receives cycle-domain network events — per-router activity and
/// queue occupancy, per-link flit movement, credit stalls, optical-hub
/// transmissions — plus the engine's own skip-ahead telemetry: every
/// clock advance (with its cause and skipped-cycle count) and every
/// epoch close (with its span and whether a jump coalesced it). Attach
/// an [`atac_trace::NetProfile`] to collect them. Like the probe and
/// profiler, the observer only ever *reads* simulator state, so an
/// observed run is bit-identical to [`run`] (tested below). With all
/// three handles disabled this is exactly [`run`].
pub fn run_observed(
    cfg: &SimConfig,
    workload: &BuiltWorkload,
    probe: ProbeHandle,
    epoch_cycles: Option<u64>,
    prof: HostProfiler,
    obs: NetObsHandle,
) -> SimResult {
    let n = cfg.topo.cores();
    assert_eq!(
        workload.scripts.len(),
        n,
        "workload built for a different core count"
    );
    workload.validate();

    let mut net = cfg.build_network();
    let mut ms = MemorySystem::new(cfg.topo, cfg.protocol);
    // audit: allow(alloc) one-time setup before the cycle loop
    net.set_probe(probe.clone());
    // audit: allow(alloc) one-time setup before the cycle loop
    ms.set_probe(probe.clone());
    // The memory system laps its own phases (outbox flush → Coherence,
    // controller tick → Memctrl) on the shared timeline.
    // audit: allow(alloc) one-time setup before the cycle loop
    ms.set_profiler(prof.clone());
    // The network laps its own sub-phases (route compute, switch
    // arbitration, credits, queue ops, hub arbitration, skip-scan) and
    // feeds the per-router/link counters to the observer.
    // audit: allow(alloc) one-time setup before the cycle loop
    net.set_profiler(prof.clone());
    // audit: allow(alloc) one-time setup before the cycle loop
    net.set_observer(obs.clone());
    let mut sampler = epoch_cycles
        .filter(|_| probe.is_enabled())
        .map(|_| EpochSampler::new(cfg));
    // The epoch grid is owned by the engine (not the sampler) so the
    // skip-ahead observer sees epoch closes even when only the network
    // observer is attached — e.g. netprof bench runs with no trace
    // probe, which previously reported zero epochs forever.
    let mut grid = (obs.is_enabled() || sampler.is_some()).then(|| {
        let every = epoch_cycles.unwrap_or(10_000).max(1);
        EpochGrid {
            every,
            start: 0,
            next: every,
        }
    });
    let mut cores: Vec<CoreCtx> = (0..n)
        .map(|_| CoreCtx {
            pc: 0,
            state: CoreState::Scheduled,
            instrs: 0,
        })
        .collect(); // audit: allow(alloc) one-time setup before the cycle loop

    // (wake cycle, core) min-heap.
    let mut heap: BinaryHeap<Reverse<(Cycle, u16)>> =
        (0..n as u16).map(|c| Reverse((0, c))).collect(); // audit: allow(cast) core count ≤ 1024 fits u16; audit: allow(alloc) one-time setup
    let mut at_barrier: Vec<u16> = Vec::new(); // audit: allow(alloc) capacity-free; grows to ≤ n once
    let mut running = n; // cores not Done
    let mut deliveries: Vec<Delivery> = Vec::new(); // audit: allow(alloc) capacity-free; reused across cycles
    let mut completed: Vec<CoreId> = Vec::new(); // audit: allow(alloc) capacity-free; reused across cycles
    let mut now: Cycle = 0;
    // The network's next-event horizon, recomputed after every real
    // tick. `Some(0)` forces the first tick; afterwards the network is
    // ticked only when the horizon arrives or the coherence outbox may
    // inject — every gated-out tick would have been a pure no-op.
    let mut net_horizon: Option<Cycle> = Some(0);
    prof.lap(HostPhase::Setup);

    while running > 0 {
        // --- core execution for this cycle ---
        while let Some(&Reverse((t, c))) = heap.peek() {
            if t > now {
                break;
            }
            heap.pop();
            let ci = c as usize;
            debug_assert_eq!(cores[ci].state, CoreState::Scheduled);
            match workload.scripts[ci].get(cores[ci].pc).copied() {
                None => {
                    cores[ci].state = CoreState::Done;
                    running -= 1;
                }
                Some(op) => {
                    cores[ci].pc += 1;
                    match op {
                        Op::Compute(instrs) => {
                            let lat = ifetch(&mut ms, c, &mut cores[ci], instrs.max(1));
                            // audit: allow(alloc) heap capacity peaks at n; pushes amortize
                            heap.push(Reverse((
                                now + Cycle::from(instrs.max(1)) + Cycle::from(lat),
                                c,
                            )));
                        }
                        Op::Load(a) | Op::Store(a) => {
                            let write = matches!(op, Op::Store(_));
                            let flat = ifetch(&mut ms, c, &mut cores[ci], 1);
                            match ms.access(CoreId(c), a, write) {
                                AccessResult::Hit(lat) => {
                                    // audit: allow(alloc) heap capacity peaks at n; pushes amortize
                                    heap.push(Reverse((now + Cycle::from(lat + flat), c)));
                                }
                                AccessResult::Miss => {
                                    cores[ci].state = CoreState::BlockedOnMiss;
                                    probe.txn(&TxnEvent {
                                        core: u32::from(c),
                                        phase: TxnPhase::Begin { write },
                                        at: now,
                                    });
                                }
                            }
                        }
                        Op::Barrier => {
                            cores[ci].state = CoreState::AtBarrier;
                            at_barrier.push(c); // audit: allow(alloc) bounded by n; capacity amortized
                            if at_barrier.len() == running {
                                for &b in &at_barrier {
                                    cores[b as usize].state = CoreState::Scheduled;
                                    // audit: allow(alloc) heap capacity peaks at n; pushes amortize
                                    heap.push(Reverse((now + 1, b)));
                                }
                                at_barrier.clear();
                            }
                        }
                    }
                }
            }
        }

        prof.lap(HostPhase::Replay);

        // --- network + memory subsystem ---
        // Tick the network only when it can actually act: the horizon
        // computed at the last tick has arrived, or the coherence
        // outbox may inject new flits this cycle. [`Network::next_event`]
        // is never later than the next real state change, so a gated-out
        // tick would have been a pure no-op — results stay bit-identical
        // while idle network stretches cost nothing, even when cores
        // keep the clock stepping one cycle at a time.
        let may_inject = ms.outbox_pending();
        ms.flush_outbox(net.as_mut(), now); // laps Coherence internally
        let net_ticked = may_inject || net_horizon.is_some_and(|h| h <= now);
        if net_ticked {
            prof.net_tick(); // announce the tick; decide sub-lap sampling
            net.tick(now);
            net.drain_deliveries(&mut deliveries);
            // Attribute the delivery drain (and any untracked remainder
            // of the network stretch) so the sub-phases tile the
            // Network lap.
            prof.net_lap(NetSubPhase::QueueOps);
            // A still-pending outbox forces a tick at `now + 1` no
            // matter what the network says, so the horizon scan can
            // wait until after that tick. Same tick decisions, one
            // fewer active-list scan on injection-heavy cycles.
            net_horizon = if ms.outbox_pending() {
                Some(now + 1)
            } else {
                net.next_event(now)
            };
            // Close the network stretch only on cycles that actually
            // ticked the network: a gated-out cycle has nothing to
            // attribute, and the unconditional clock read used to charge
            // pure measurement overhead to the network phase on every
            // quiet cycle.
            prof.lap(HostPhase::Network);
        }
        for d in deliveries.drain(..) {
            ms.handle_delivery(&d, now);
        }
        prof.lap(HostPhase::Coherence);
        ms.memctrl_tick(now); // laps Memctrl internally
        ms.drain_completions(&mut completed);
        for c in completed.drain(..) {
            debug_assert_eq!(cores[c.idx()].state, CoreState::BlockedOnMiss);
            cores[c.idx()].state = CoreState::Scheduled;
            probe.txn(&TxnEvent {
                core: u32::from(c.0),
                phase: TxnPhase::End,
                at: now,
            });
            // audit: allow(alloc) heap capacity peaks at n; pushes amortize
            heap.push(Reverse((now + 1, c.0)));
        }
        prof.lap(HostPhase::Coherence);

        // --- advance the clock (skip-ahead when the chip is quiet) ---
        // Every subsystem reports the earliest future cycle at which it
        // can act and the clock jumps straight to the soonest one. The
        // network's own horizon ([`Network::next_event`]) is never later
        // than its next real state change, so jumping over the gap skips
        // only no-op ticks — the run stays bit-identical. A pending
        // coherence outbox can inject on the very next cycle, so it pins
        // the network horizon there.
        let next_net = if ms.outbox_pending() {
            Some(now + 1)
        } else {
            net_horizon
        };
        let next_core = heap.peek().map(|&Reverse((t, _))| t);
        let next_mem = ms.next_mem_event();
        let soonest = [next_net, next_core, next_mem].into_iter().flatten().min();
        match soonest {
            Some(at) => {
                let t = at.max(now + 1);
                let cause = if next_net.is_some_and(|a| a == at) {
                    if t == now + 1 {
                        AdvanceCause::Tick
                    } else {
                        AdvanceCause::WakeNet
                    }
                } else if next_core.is_some_and(|a| a == at) {
                    AdvanceCause::WakeCore
                } else {
                    AdvanceCause::WakeMem
                };
                obs.advance(t - now, cause, net_ticked);
                now = t;
            }
            None => {
                if running > 0 {
                    let blocked: Vec<_> = cores
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.state == CoreState::BlockedOnMiss)
                        .map(|(i, _)| i)
                        .collect(); // audit: allow(alloc) deadlock panic path; never runs on a healthy sim
                    panic!(
                        "deadlock at cycle {now}: {running} cores running, \
                         blocked={blocked:?}, barrier_waiters={}",
                        at_barrier.len()
                    );
                }
                break;
            }
        }

        // --- epoch close (observers only; no simulator state) ---
        if let Some(g) = grid.as_mut() {
            if now >= g.next {
                let span = now - g.start;
                obs.epoch(span, span > g.every);
                if let Some(s) = sampler.as_mut() {
                    s.close_epoch(now, cfg, net.as_ref(), &ms, &cores, &probe);
                }
                g.start = now;
                g.next = (now / g.every + 1) * g.every;
            }
        }
        prof.lap(HostPhase::Advance);
    }

    let cycles = now.max(1);
    let instructions: u64 = cores.iter().map(|c| c.instrs).sum();
    let ipc = instructions as f64 / cycles as f64 / n as f64;
    let mut net_stats = net.stats();
    net_stats.cycles = cycles;
    let coh_stats = ms.stats.clone(); // audit: allow(alloc) one-time end-of-run snapshot
                                      // Trailing partial epoch so the time series covers the whole run.
    if let Some(g) = grid.as_mut() {
        if cycles > g.start {
            let span = cycles - g.start;
            obs.epoch(span, span > g.every);
            if let Some(s) = sampler.as_mut() {
                s.close_epoch(cycles, cfg, net.as_ref(), &ms, &cores, &probe);
            }
            g.start = cycles;
        }
    }
    // Merge the network's batched per-router/link counters into the
    // observer before the profile is read.
    net.flush_obs();
    obs.run_done(cycles);
    let energy = integrate(cfg, &net_stats, &coh_stats, cycles, ipc);
    // Sanitizer: at simulation end everything must have drained — no
    // leaked payload-slab entries, held unicasts, queued outboxes, or
    // un-reported completions.
    debug_assert!(
        ms.is_quiescent(),
        "memory system failed to drain at simulation end"
    );
    ms.check_invariants(ms.is_quiescent());
    prof.lap(HostPhase::Integrate);

    SimResult {
        cycles,
        instructions,
        ipc,
        net: net_stats,
        coh: coh_stats,
        energy,
        arch: cfg.arch.name(),
        workload: workload.name,
    }
}

/// Charge instruction fetches for `instrs` instructions and return any
/// stall cycles beyond the overlapped single-cycle fetch.
fn ifetch(ms: &mut MemorySystem, core: u16, ctx: &mut CoreCtx, instrs: u32) -> u32 {
    let line = (ctx.instrs / INSTRS_PER_LINE) % CODE_LINES;
    let addr = Addr(CODE_BASE + u64::from(core) * (CODE_LINES * 64) + line * 64);
    ctx.instrs += u64::from(instrs);
    let lat = ms.ifetch_block(CoreId(core), addr, instrs);
    lat.saturating_sub(1) // a hit overlaps with execution
}

/// Field-wise counter delta between two [`NetStats`] snapshots.
/// Saturating: laser mode-cycles are charged in bulk at transmission
/// start, so a coalesced epoch can observe the charge before the cycles
/// it covers have elapsed.
fn net_delta(cur: &NetStats, prev: &NetStats) -> NetStats {
    let mut d = NetStats::default();
    for ((name, c), (_, p)) in cur.fields().into_iter().zip(prev.fields()) {
        let known = d.set_field(name, c.saturating_sub(p));
        debug_assert!(known, "unknown NetStats field {name}");
    }
    d
}

/// Field-wise counter delta between two [`CoherenceStats`] snapshots.
fn coh_delta(cur: &CoherenceStats, prev: &CoherenceStats) -> CoherenceStats {
    let mut d = CoherenceStats::default();
    for ((name, c), (_, p)) in cur.fields().into_iter().zip(prev.fields()) {
        let known = d.set_field(name, c.saturating_sub(p));
        debug_assert!(known, "unknown CoherenceStats field {name}");
    }
    d
}

/// The engine-owned epoch boundary grid: nominal boundaries every
/// `every` cycles, with a skip-ahead jump that crosses several
/// boundaries closing one *coalesced* epoch spanning the whole jump.
/// Active whenever any epoch consumer is attached — the trace sampler,
/// the network observer, or both — and drives them in lock-step so
/// their epoch counts always reconcile.
#[derive(Debug)]
struct EpochGrid {
    /// Nominal epoch length in cycles.
    every: u64,
    /// First cycle of the currently open epoch.
    start: Cycle,
    /// Next nominal boundary to close at.
    next: Cycle,
}

/// The engine's epoch sampler: snapshots the event counters every
/// `every` cycles and emits the delta (plus instantaneous queue/stall
/// state and the epoch's integrated energy) as an [`EpochSample`].
///
/// Sampling happens after the clock advance, so a skip-ahead jump that
/// crosses several nominal boundaries produces one *coalesced* sample
/// covering the whole jump — `EpochSample::start`/`end` record the
/// actual span. The sampler only ever reads simulator state; it is
/// constructed solely when a probe is attached, so untraced runs carry
/// no per-cycle cost beyond one `Option` test.
#[derive(Debug)]
struct EpochSampler {
    /// First cycle of the currently open epoch (boundaries themselves
    /// are driven by the engine's [`EpochGrid`]).
    start: Cycle,
    prev_net: NetStats,
    prev_coh: CoherenceStats,
    prev_instrs: u64,
    /// Optical SWMR links on the chip (one per cluster hub; 0 for the
    /// electrical meshes). Laser idle time per Table V is
    /// `links × span − unicast − broadcast` mode cycles.
    laser_links: u64,
}

impl EpochSampler {
    fn new(cfg: &SimConfig) -> Self {
        EpochSampler {
            start: 0,
            prev_net: NetStats::default(),
            prev_coh: CoherenceStats::default(),
            prev_instrs: 0,
            laser_links: if cfg.arch.is_optical() {
                cfg.topo.clusters() as u64
            } else {
                0
            },
        }
    }

    /// Close the epoch `[self.start, upto)`: emit its sample and roll
    /// the counter snapshots forward. Callers guarantee `upto > start`.
    fn close_epoch(
        &mut self,
        upto: Cycle,
        cfg: &SimConfig,
        net: &dyn Network,
        ms: &MemorySystem,
        cores: &[CoreCtx],
        probe: &ProbeHandle,
    ) {
        debug_assert!(upto > self.start);
        let cur_net = net.stats();
        let cur_coh = ms.stats.clone();
        let instrs: u64 = cores.iter().map(|c| c.instrs).sum();
        let dnet = net_delta(&cur_net, &self.prev_net);
        let dcoh = coh_delta(&cur_coh, &self.prev_coh);

        let span = upto - self.start;
        let epoch_ipc = (instrs - self.prev_instrs) as f64 / span as f64 / cfg.topo.cores() as f64;
        let energy = integrate(cfg, &dnet, &dcoh, span, epoch_ipc).total();
        let active = dnet.laser_unicast_cycles + dnet.laser_broadcast_cycles;
        let stalled = cores
            .iter()
            .filter(|c| c.state == CoreState::BlockedOnMiss)
            .count() as u64;

        probe.epoch(&EpochSample {
            start: self.start,
            end: upto,
            laser_idle_cycles: (span * self.laser_links).saturating_sub(active),
            laser_unicast_cycles: dnet.laser_unicast_cycles,
            laser_broadcast_cycles: dnet.laser_broadcast_cycles,
            enet_link_traversals: dnet.link_traversals,
            onet_flits_sent: dnet.onet_flits_sent,
            receive_net_flits: dnet.receive_net_unicast_flits + dnet.receive_net_broadcast_flits,
            flits_injected: dnet.flits_injected,
            stalled_cores: stalled,
            outbox_depth: ms.outbox_depth() as u64,
            energy,
        });

        self.start = upto;
        self.prev_net = cur_net;
        self.prev_coh = cur_coh;
        self.prev_instrs = instrs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atac_workloads::{Benchmark, Scale};

    fn quick(cfg: SimConfig, b: Benchmark) -> SimResult {
        let w = b.build(cfg.topo.cores(), Scale::Test);
        run(&cfg, &w)
    }

    #[test]
    fn runs_ocean_on_atac_plus() {
        let r = quick(SimConfig::small(), Benchmark::OceanContig);
        assert!(r.cycles > 100);
        assert!(r.instructions > 1000);
        assert!(r.ipc > 0.0 && r.ipc <= 1.0);
        assert!(r.coh.l2_misses > 0);
        assert!(r.net.unicast_received > 0);
    }

    #[test]
    fn runs_every_benchmark_on_every_arch() {
        use crate::config::Arch;
        for arch in [Arch::EMeshPure, Arch::EMeshBcast, Arch::atac_plus()] {
            for b in [Benchmark::Radix, Benchmark::Barnes, Benchmark::DynamicGraph] {
                let cfg = SimConfig {
                    arch,
                    ..SimConfig::small()
                };
                let r = quick(cfg, b);
                assert!(r.cycles > 0, "{arch:?} {b:?}");
                assert!(r.energy.total().value() > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let go = || {
            let r = quick(SimConfig::small(), Benchmark::Radix);
            (
                r.cycles,
                r.instructions,
                r.net.flits_injected,
                r.coh.inv_broadcasts,
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn broadcast_heavy_apps_broadcast() {
        let r = quick(SimConfig::small(), Benchmark::Barnes);
        assert!(
            r.coh.inv_broadcasts > 0,
            "barnes must trigger ACKwise broadcasts"
        );
    }

    #[test]
    fn pure_mesh_pays_broadcast_expansion() {
        // At this miniature scale runtime deltas are noise, but the flit
        // accounting is exact: EMesh-Pure expands every broadcast into
        // 63 unicast packets.
        let mk = |arch| SimConfig {
            arch,
            ..SimConfig::small()
        };
        let pure = quick(mk(crate::config::Arch::EMeshPure), Benchmark::DynamicGraph);
        let bcast = quick(mk(crate::config::Arch::EMeshBcast), Benchmark::DynamicGraph);
        assert!(pure.coh.inv_broadcasts > 0);
        assert!(
            pure.net.flits_injected > bcast.net.flits_injected,
            "pure {} vs bcast {}",
            pure.net.flits_injected,
            bcast.net.flits_injected
        );
    }

    #[test]
    fn traced_run_is_bit_identical_and_reconciles() {
        use atac_trace::TraceCollector;
        use std::cell::RefCell;
        use std::rc::Rc;

        let cfg = SimConfig::small();
        let w = Benchmark::Radix.build(cfg.topo.cores(), Scale::Test);
        let plain = run(&cfg, &w);

        let collector = Rc::new(RefCell::new(TraceCollector::new()));
        let probe = ProbeHandle::attach(Rc::clone(&collector));
        let traced = run_with_probe(&cfg, &w, probe, Some(500));

        // Probes are observers only: the traced result must be
        // bit-identical to the untraced one.
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.instructions, traced.instructions);
        assert_eq!(plain.ipc.to_bits(), traced.ipc.to_bits());
        assert_eq!(plain.net.fields(), traced.net.fields());
        assert_eq!(plain.coh.fields(), traced.coh.fields());
        assert_eq!(
            plain.energy.total().value().to_bits(),
            traced.energy.total().value().to_bits()
        );

        let c = collector.borrow();
        // Every delivery NetStats counted landed in a histogram.
        assert_eq!(
            c.total_net_deliveries(),
            traced.net.unicast_received + traced.net.broadcast_received
        );
        // All transactions saw Begin..End; none left open.
        assert_eq!(c.open_txn_count(), 0);
        // Epochs tile the run: contiguous, ending at completion.
        let epochs = c.epochs();
        assert!(!epochs.is_empty());
        assert_eq!(epochs[0].start, 0);
        assert_eq!(epochs.last().unwrap().end, traced.cycles);
        for pair in epochs.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Laser-mode occupancy (Table V): the per-epoch deltas telescope
        // to the run totals, and idle stays within the link-cycle budget
        // (mode cycles are charged in bulk at burst start, so one epoch
        // may carry charge for cycles that elapse in the next).
        let links = cfg.topo.clusters() as u64;
        let uni: u64 = epochs.iter().map(|e| e.laser_unicast_cycles).sum();
        let bcast: u64 = epochs.iter().map(|e| e.laser_broadcast_cycles).sum();
        assert_eq!(uni, traced.net.laser_unicast_cycles);
        assert_eq!(bcast, traced.net.laser_broadcast_cycles);
        assert!(uni + bcast > 0, "radix on ATAC+ must use the ONet");
        for e in epochs {
            assert!(e.laser_idle_cycles <= links * e.span_cycles());
            assert!(e.energy.value() > 0.0);
        }
    }

    #[test]
    fn profiled_run_is_bit_identical_and_laps_cover_the_run() {
        use atac_trace::{HostPhase, HostProfiler, TraceCollector};

        let cfg = SimConfig::small();
        let w = Benchmark::Radix.build(cfg.topo.cores(), Scale::Test);
        let plain = run(&cfg, &w);

        // Profile *and* trace together: the strongest observer load.
        let (_collector, probe) = TraceCollector::metrics_worker();
        let prof = HostProfiler::enabled();
        let profiled = run_profiled(&cfg, &w, probe, None, prof.clone());

        // Profilers read the host clock, never simulator state: the
        // profiled result must be bit-identical to the plain one.
        assert_eq!(plain.cycles, profiled.cycles);
        assert_eq!(plain.instructions, profiled.instructions);
        assert_eq!(plain.ipc.to_bits(), profiled.ipc.to_bits());
        assert_eq!(plain.net.fields(), profiled.net.fields());
        assert_eq!(plain.coh.fields(), profiled.coh.fields());
        assert_eq!(
            plain.energy.total().value().to_bits(),
            profiled.energy.total().value().to_bits()
        );

        let profile = prof.finish().expect("profiler enabled");
        // The lap timeline is contiguous from creation through
        // Integrate, so the phases must tile (nearly) the whole wall
        // time — the ≥ 90 % acceptance bound with slack only for the
        // finish() call itself.
        assert!(
            profile.coverage() >= 0.9,
            "phase laps cover {:.1}% of {:.4}s",
            profile.coverage() * 100.0,
            profile.total_secs
        );
        // The run's main phases all saw host time.
        for phase in [
            HostPhase::Replay,
            HostPhase::Network,
            HostPhase::Coherence,
            HostPhase::Advance,
        ] {
            assert!(
                profile.phase_secs(phase) > 0.0,
                "phase {} never lapped",
                phase.name()
            );
        }
    }

    #[test]
    fn observed_run_is_bit_identical_and_counters_reconcile() {
        use atac_trace::{NetProfile, TraceCollector};
        use std::cell::RefCell;
        use std::rc::Rc;

        let cfg = SimConfig::small();
        let w = Benchmark::Radix.build(cfg.topo.cores(), Scale::Test);
        let plain = run(&cfg, &w);

        let collector = Rc::new(RefCell::new(TraceCollector::new()));
        let probe = ProbeHandle::attach(Rc::clone(&collector));
        let netprof = Rc::new(RefCell::new(NetProfile::new()));
        let obs = NetObsHandle::attach(Rc::clone(&netprof));
        let prof = HostProfiler::enabled_with_netprof(true);
        let observed = run_observed(&cfg, &w, probe, Some(500), prof, obs);

        // The observer only reads simulator state: bit-identical result.
        assert_eq!(plain.cycles, observed.cycles);
        assert_eq!(plain.instructions, observed.instructions);
        assert_eq!(plain.ipc.to_bits(), observed.ipc.to_bits());
        assert_eq!(plain.net.fields(), observed.net.fields());
        assert_eq!(plain.coh.fields(), observed.coh.fields());
        assert_eq!(
            plain.energy.total().value().to_bits(),
            observed.energy.total().value().to_bits()
        );

        let p = netprof.borrow();
        // The skip-ahead ledger partitions the clock: every simulated
        // cycle was either ticked through or skipped over.
        assert_eq!(p.cycles, observed.cycles);
        assert_eq!(p.ticks_executed + p.cycles_skipped, p.cycles, "{p:?}");
        // Radix on this miniature ATAC+ both ticks (traffic in flight)
        // and jumps (compute stretches with a known wake-up).
        assert!(p.ticks_executed > 0);
        assert!(p.skip_jumps > 0, "skip-ahead never engaged");
        assert_eq!(p.skip_fraction() > 0.0, p.cycles_skipped > 0);
        assert!(p.wake_core + p.wake_mem + p.wake_net >= p.skip_jumps);
        // The epoch grid runs whenever an observer is attached, and a
        // run with skip-ahead jumps must coalesce at least one epoch.
        assert!(p.epochs_closed > 0, "epoch grid never closed an epoch");
        // The router-granularity ledger tiles router time: every
        // router-cycle was either a processed tick or skipped by that
        // router's next-event horizon — and the mesh actually skips
        // (idle routers are never pulled off the active list).
        assert_eq!(
            p.router_ticks() + p.router_cycles_skipped(),
            p.router_cycles()
        );
        assert!(
            p.router_cycles_skipped() > 0,
            "per-router skip never engaged"
        );
        assert!(p.router_skip_fraction() > 0.0);
        // Router counters reconcile with the run's NetStats: every
        // crossbar traversal was observed, on a router that was active.
        assert_eq!(p.total_flits_routed(), observed.net.xbar_traversals);
        assert!(!p.routers.is_empty());
        for (r, ro) in p.routers.iter().enumerate() {
            assert!(ro.active_cycles <= p.cycles, "router {r}: {ro:?}");
            assert!(ro.flits_routed == 0 || ro.active_cycles > 0, "router {r}");
            assert!(ro.idle_fraction(p.cycles) <= 1.0);
            assert_eq!(ro.occupancy_hist.iter().sum::<u64>(), ro.active_cycles);
        }
        // Per-link counters never exceed the per-router totals.
        let link_sum: u64 = p.link_flits.iter().sum();
        assert!(link_sum <= p.total_flits_routed());
        // The optical hubs transmitted (radix on ATAC+ uses the ONet).
        let hub_total: u64 =
            p.hub_unicast_flits.iter().sum::<u64>() + p.hub_broadcast_flits.iter().sum::<u64>();
        assert!(hub_total > 0);
    }

    #[test]
    fn observer_only_runs_still_close_epochs() {
        // The bench executor attaches a network observer but no trace
        // probe and no epoch request; the engine-owned grid must still
        // close (default-length) epochs, and a run whose clock jumps
        // must coalesce at least one of them. This is the regression
        // test for the long-standing "epochs closed 0 across every
        // netprof sweep" hole.
        use atac_trace::NetProfile;
        use std::cell::RefCell;
        use std::rc::Rc;

        let cfg = SimConfig::small();
        let w = Benchmark::Radix.build(cfg.topo.cores(), Scale::Test);
        let netprof = Rc::new(RefCell::new(NetProfile::new()));
        let obs = NetObsHandle::attach(Rc::clone(&netprof));
        let r = run_observed(
            &cfg,
            &w,
            ProbeHandle::default(),
            None,
            HostProfiler::default(),
            obs,
        );

        let p = netprof.borrow();
        assert!(p.epochs_closed > 0, "no epochs with observer attached");
        // Closes land on the default 10k-cycle grid: one per boundary
        // crossed (jumps can merge several) plus the trailing partial.
        assert!(p.epochs_closed <= r.cycles / 10_000 + 1);
        assert!(p.max_epoch_span > 0);
        // An epoch is coalesced exactly when a jump stretched it past
        // the nominal length — the ledger and the span witness agree.
        assert_eq!(p.coalesced_epochs > 0, p.max_epoch_span > 10_000, "{p:?}");
    }

    #[test]
    fn net_sub_phases_cover_the_network_lap() {
        let cfg = SimConfig::small();
        let w = Benchmark::Radix.build(cfg.topo.cores(), Scale::Test);
        let prof = HostProfiler::enabled_with_netprof(true);
        let r = run_observed(
            &cfg,
            &w,
            ProbeHandle::default(),
            None,
            prof.clone(),
            NetObsHandle::disabled(),
        );
        assert!(r.cycles > 0);

        let profile = prof.finish().expect("profiler enabled");
        assert!(profile.phase_secs(HostPhase::Network) > 0.0);
        // The sub-phase laps are anchored to tile exactly the network
        // stretch of the engine loop; ≥95 % is the acceptance bound.
        assert!(
            profile.net_sub_coverage() >= 0.95,
            "sub-phases cover {:.1}% of the network phase ({:?})",
            profile.net_sub_coverage() * 100.0,
            profile.net_phases().collect::<Vec<_>>()
        );
        // The always-on stretches saw host time.
        for sub in [NetSubPhase::SkipScan, NetSubPhase::QueueOps] {
            assert!(
                profile.net_sub(sub) > 0.0,
                "sub-phase {} never lapped",
                sub.name()
            );
        }
    }

    #[test]
    fn epoch_coalescing_reconciles_with_the_sampled_time_series() {
        use atac_trace::{NetProfile, TraceCollector};
        use std::cell::RefCell;
        use std::rc::Rc;

        let every = 200;
        let cfg = SimConfig::small();
        let w = Benchmark::Radix.build(cfg.topo.cores(), Scale::Test);
        let collector = Rc::new(RefCell::new(TraceCollector::new()));
        let probe = ProbeHandle::attach(Rc::clone(&collector));
        let netprof = Rc::new(RefCell::new(NetProfile::new()));
        let obs = NetObsHandle::attach(Rc::clone(&netprof));
        run_observed(&cfg, &w, probe, Some(every), HostProfiler::default(), obs);

        let c = collector.borrow();
        let epochs = c.epochs();
        let p = netprof.borrow();
        // Every epoch the sampler emitted was observed, and the
        // coalescing verdicts match the actual sample spans: an epoch is
        // coalesced exactly when a skip-ahead jump (or the trailing
        // close) stretched it past the nominal length.
        assert_eq!(p.epochs_closed, epochs.len() as u64);
        let coalesced = epochs.iter().filter(|e| e.span_cycles() > every).count() as u64;
        assert_eq!(p.coalesced_epochs, coalesced);
        let max_span = epochs.iter().map(|e| e.span_cycles()).max().unwrap_or(0);
        assert_eq!(p.max_epoch_span, max_span);
        assert!(p.epochs_closed > 0);
    }

    #[test]
    fn ipc_reflects_stalls() {
        // The same workload on a slower network must lose IPC — stalls
        // propagate into the execution-driven core model.
        let fast = quick(SimConfig::small(), Benchmark::DynamicGraph);
        let slow = quick(
            SimConfig {
                arch: crate::config::Arch::EMeshPure,
                ..SimConfig::small()
            },
            Benchmark::DynamicGraph,
        );
        assert!(
            fast.ipc > slow.ipc,
            "ATAC+ ipc {} should beat EMesh-Pure ipc {}",
            fast.ipc,
            slow.ipc
        );
    }
}
