//! The execution-driven full-system simulation loop.
//!
//! This is the reproduction's stand-in for Graphite: it runs a
//! [`BuiltWorkload`]'s per-core scripts on in-order single-issue cores
//! over the simulated memory hierarchy and network, with full
//! back-pressure — a core blocks on its cache miss until the coherence
//! transaction (and every network queue it crosses) completes, so network
//! latency propagates into application runtime exactly as the paper
//! requires of an execution-driven evaluation (§I's critique of
//! trace-driven studies).
//!
//! The loop is cycle-driven while any traffic is in flight and
//! *skip-ahead* otherwise: when the network is empty, no protocol
//! messages are queued, and every core is stalled with a known wake-up
//! time, the clock jumps straight to the next event. This keeps 1024-core
//! runs fast through the compute-heavy stretches.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use atac_coherence::{AccessResult, Addr, MemorySystem};
use atac_net::{CoreId, Cycle, Delivery};
use atac_phys::units::{JouleSeconds, Seconds};
use atac_workloads::{BuiltWorkload, Op};

use crate::config::SimConfig;
use crate::energy::{integrate, EnergyBreakdown};

/// Instruction bytes per cache line (4-byte instructions, 64-byte lines).
const INSTRS_PER_LINE: u64 = 16;
/// Per-core loop footprint in instruction-cache lines (8 KB of code —
/// resident in the 32 KB L1-I after warm-up, as real kernels are).
const CODE_LINES: u64 = 128;
/// Base of the (private, read-only) code region in the address space.
const CODE_BASE: u64 = 0xF000_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Will execute its next op when the clock reaches its heap entry.
    Scheduled,
    /// Waiting for an MSHR completion.
    BlockedOnMiss,
    /// Arrived at a barrier.
    AtBarrier,
    /// Script exhausted.
    Done,
}

struct CoreCtx {
    pc: usize,
    state: CoreState,
    instrs: u64,
}

/// The outcome of one full-system run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Application completion time in cycles.
    pub cycles: Cycle,
    /// Total instructions executed across all cores.
    pub instructions: u64,
    /// Average per-core IPC (≤ 1 for the in-order single-issue core).
    pub ipc: f64,
    /// Network event counters.
    pub net: atac_net::NetStats,
    /// Memory-subsystem event counters.
    pub coh: atac_coherence::CoherenceStats,
    /// Integrated energy breakdown.
    pub energy: EnergyBreakdown,
    /// Architecture name.
    pub arch: String,
    /// Workload name.
    pub workload: &'static str,
}

impl SimResult {
    /// Completion time in seconds.
    pub fn runtime(&self, cfg: &SimConfig) -> Seconds {
        cfg.cycle_time() * self.cycles as f64
    }

    /// Energy-delay product (the paper's headline metric, Fig. 8).
    pub fn edp(&self, cfg: &SimConfig) -> JouleSeconds {
        self.energy.total() * self.runtime(cfg)
    }
}

/// Run one workload on one configuration to completion.
pub fn run(cfg: &SimConfig, workload: &BuiltWorkload) -> SimResult {
    let n = cfg.topo.cores();
    assert_eq!(
        workload.scripts.len(),
        n,
        "workload built for a different core count"
    );
    workload.validate();

    let mut net = cfg.build_network();
    let mut ms = MemorySystem::new(cfg.topo, cfg.protocol);
    let mut cores: Vec<CoreCtx> = (0..n)
        .map(|_| CoreCtx {
            pc: 0,
            state: CoreState::Scheduled,
            instrs: 0,
        })
        .collect();

    // (wake cycle, core) min-heap.
    let mut heap: BinaryHeap<Reverse<(Cycle, u16)>> =
        (0..n as u16).map(|c| Reverse((0, c))).collect(); // audit: allow(cast) core count ≤ 1024 fits u16
    let mut at_barrier: Vec<u16> = Vec::new();
    let mut running = n; // cores not Done
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut completed: Vec<CoreId> = Vec::new();
    let mut now: Cycle = 0;

    while running > 0 {
        // --- core execution for this cycle ---
        while let Some(&Reverse((t, c))) = heap.peek() {
            if t > now {
                break;
            }
            heap.pop();
            let ci = c as usize;
            debug_assert_eq!(cores[ci].state, CoreState::Scheduled);
            match workload.scripts[ci].get(cores[ci].pc).copied() {
                None => {
                    cores[ci].state = CoreState::Done;
                    running -= 1;
                }
                Some(op) => {
                    cores[ci].pc += 1;
                    match op {
                        Op::Compute(instrs) => {
                            let lat = ifetch(&mut ms, c, &mut cores[ci], instrs.max(1));
                            heap.push(Reverse((
                                now + Cycle::from(instrs.max(1)) + Cycle::from(lat),
                                c,
                            )));
                        }
                        Op::Load(a) | Op::Store(a) => {
                            let write = matches!(op, Op::Store(_));
                            let flat = ifetch(&mut ms, c, &mut cores[ci], 1);
                            match ms.access(CoreId(c), a, write) {
                                AccessResult::Hit(lat) => {
                                    heap.push(Reverse((now + Cycle::from(lat + flat), c)));
                                }
                                AccessResult::Miss => {
                                    cores[ci].state = CoreState::BlockedOnMiss;
                                }
                            }
                        }
                        Op::Barrier => {
                            cores[ci].state = CoreState::AtBarrier;
                            at_barrier.push(c);
                            if at_barrier.len() == running {
                                for &b in &at_barrier {
                                    cores[b as usize].state = CoreState::Scheduled;
                                    heap.push(Reverse((now + 1, b)));
                                }
                                at_barrier.clear();
                            }
                        }
                    }
                }
            }
        }

        // --- network + memory subsystem ---
        ms.flush_outbox(net.as_mut(), now);
        net.tick(now);
        net.drain_deliveries(&mut deliveries);
        for d in deliveries.drain(..) {
            ms.handle_delivery(&d, now);
        }
        ms.memctrl_tick(now);
        ms.drain_completions(&mut completed);
        for c in completed.drain(..) {
            debug_assert_eq!(cores[c.idx()].state, CoreState::BlockedOnMiss);
            cores[c.idx()].state = CoreState::Scheduled;
            heap.push(Reverse((now + 1, c.0)));
        }

        // --- advance the clock (skip-ahead when the chip is quiet) ---
        if !net.is_idle() || ms.outbox_pending() {
            now += 1;
        } else {
            let next_core = heap.peek().map(|&Reverse((t, _))| t);
            let next_mem = ms.next_mem_event();
            match (next_core, next_mem) {
                (Some(a), Some(b)) => now = a.min(b).max(now + 1),
                (Some(a), None) => now = a.max(now + 1),
                (None, Some(b)) => now = b.max(now + 1),
                (None, None) => {
                    if running > 0 {
                        let blocked: Vec<_> = cores
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.state == CoreState::BlockedOnMiss)
                            .map(|(i, _)| i)
                            .collect();
                        panic!(
                            "deadlock at cycle {now}: {running} cores running, \
                             blocked={blocked:?}, barrier_waiters={}",
                            at_barrier.len()
                        );
                    }
                    break;
                }
            }
        }
    }

    let cycles = now.max(1);
    let instructions: u64 = cores.iter().map(|c| c.instrs).sum();
    let ipc = instructions as f64 / cycles as f64 / n as f64;
    let mut net_stats = net.stats();
    net_stats.cycles = cycles;
    let coh_stats = ms.stats.clone();
    let energy = integrate(cfg, &net_stats, &coh_stats, cycles, ipc);
    // Sanitizer: at simulation end everything must have drained — no
    // leaked payload-slab entries, held unicasts, queued outboxes, or
    // un-reported completions.
    debug_assert!(
        ms.is_quiescent(),
        "memory system failed to drain at simulation end"
    );
    ms.check_invariants(ms.is_quiescent());

    SimResult {
        cycles,
        instructions,
        ipc,
        net: net_stats,
        coh: coh_stats,
        energy,
        arch: cfg.arch.name(),
        workload: workload.name,
    }
}

/// Charge instruction fetches for `instrs` instructions and return any
/// stall cycles beyond the overlapped single-cycle fetch.
fn ifetch(ms: &mut MemorySystem, core: u16, ctx: &mut CoreCtx, instrs: u32) -> u32 {
    let line = (ctx.instrs / INSTRS_PER_LINE) % CODE_LINES;
    let addr = Addr(CODE_BASE + u64::from(core) * (CODE_LINES * 64) + line * 64);
    ctx.instrs += u64::from(instrs);
    let lat = ms.ifetch_block(CoreId(core), addr, instrs);
    lat.saturating_sub(1) // a hit overlaps with execution
}

#[cfg(test)]
mod tests {
    use super::*;
    use atac_workloads::{Benchmark, Scale};

    fn quick(cfg: SimConfig, b: Benchmark) -> SimResult {
        let w = b.build(cfg.topo.cores(), Scale::Test);
        run(&cfg, &w)
    }

    #[test]
    fn runs_ocean_on_atac_plus() {
        let r = quick(SimConfig::small(), Benchmark::OceanContig);
        assert!(r.cycles > 100);
        assert!(r.instructions > 1000);
        assert!(r.ipc > 0.0 && r.ipc <= 1.0);
        assert!(r.coh.l2_misses > 0);
        assert!(r.net.unicast_received > 0);
    }

    #[test]
    fn runs_every_benchmark_on_every_arch() {
        use crate::config::Arch;
        for arch in [Arch::EMeshPure, Arch::EMeshBcast, Arch::atac_plus()] {
            for b in [Benchmark::Radix, Benchmark::Barnes, Benchmark::DynamicGraph] {
                let cfg = SimConfig {
                    arch,
                    ..SimConfig::small()
                };
                let r = quick(cfg, b);
                assert!(r.cycles > 0, "{arch:?} {b:?}");
                assert!(r.energy.total().value() > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let go = || {
            let r = quick(SimConfig::small(), Benchmark::Radix);
            (
                r.cycles,
                r.instructions,
                r.net.flits_injected,
                r.coh.inv_broadcasts,
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn broadcast_heavy_apps_broadcast() {
        let r = quick(SimConfig::small(), Benchmark::Barnes);
        assert!(
            r.coh.inv_broadcasts > 0,
            "barnes must trigger ACKwise broadcasts"
        );
    }

    #[test]
    fn pure_mesh_pays_broadcast_expansion() {
        // At this miniature scale runtime deltas are noise, but the flit
        // accounting is exact: EMesh-Pure expands every broadcast into
        // 63 unicast packets.
        let mk = |arch| SimConfig {
            arch,
            ..SimConfig::small()
        };
        let pure = quick(mk(crate::config::Arch::EMeshPure), Benchmark::DynamicGraph);
        let bcast = quick(mk(crate::config::Arch::EMeshBcast), Benchmark::DynamicGraph);
        assert!(pure.coh.inv_broadcasts > 0);
        assert!(
            pure.net.flits_injected > bcast.net.flits_injected,
            "pure {} vs bcast {}",
            pure.net.flits_injected,
            bcast.net.flits_injected
        );
    }

    #[test]
    fn ipc_reflects_stalls() {
        // The same workload on a slower network must lose IPC — stalls
        // propagate into the execution-driven core model.
        let fast = quick(SimConfig::small(), Benchmark::DynamicGraph);
        let slow = quick(
            SimConfig {
                arch: crate::config::Arch::EMeshPure,
                ..SimConfig::small()
            },
            Benchmark::DynamicGraph,
        );
        assert!(
            fast.ipc > slow.ipc,
            "ATAC+ ipc {} should beat EMesh-Pure ipc {}",
            fast.ipc,
            slow.ipc
        );
    }
}
