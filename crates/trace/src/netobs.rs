//! Cycle-domain network observability: per-router/link counters and
//! skip-ahead efficacy metrics.
//!
//! The host-time story ([`crate::profile`]) says *where the simulator's
//! seconds go*; this module says *what the simulated fabric was doing* —
//! per-router queue-occupancy histograms, credit-stall cycles, flits
//! routed, idle-cycle fractions, broadcast vs unicast hub occupancy, and
//! how effective the engine's skip-ahead advancement is (cycles skipped
//! vs simulated, coalesced-epoch sizes, wakeup causes). Together they
//! are the data the ≥5× network-phase overhaul (ROADMAP item 1) is
//! planned and proven from.
//!
//! ## Overhead and determinism guarantee
//!
//! The design mirrors [`crate::ProbeHandle`]: instrumented layers hold a
//! [`NetObsHandle`] whose default is disabled, so every observation
//! point costs one branch on an `Option` discriminant. Observers are
//! *observers only* — they receive copies of counters and never feed
//! anything back — so an observed run is bit-identical to an unobserved
//! one by construction.
//!
//! All counters are integers, which makes worker-merge order-independent
//! exactly (no float rounding): [`NetProfile::merge`] is commutative and
//! associative, with [`NetProfile::default`] as the identity, and the
//! tests pin both properties.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::probe::TrafficKind;

/// Mesh link directions per router (N/E/S/W).
pub const LINKS_PER_ROUTER: usize = 4;

/// Number of queue-occupancy histogram buckets.
pub const OCC_BUCKETS: usize = 6;

/// Display labels for the occupancy buckets, in bucket order
/// (total buffered flits across a router's input queues).
pub const OCC_BUCKET_LABELS: [&str; OCC_BUCKETS] = ["0", "1-2", "3-4", "5-8", "9-16", "17+"];

/// Bucket index for a total buffered-flit occupancy.
pub fn occ_bucket(occ: usize) -> usize {
    match occ {
        0 => 0,
        1..=2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Number of packet-run-length histogram buckets.
pub const RUN_BUCKETS: usize = 6;

/// Display labels for the packet-run-length buckets, in bucket order
/// (flits moved per switch grant through the wormhole fast path).
pub const RUN_BUCKET_LABELS: [&str; RUN_BUCKETS] = ["1", "2", "3-4", "5-8", "9-16", "17+"];

/// Bucket index for a packet-run length (flits moved in one grant).
pub fn run_bucket(len: usize) -> usize {
    match len {
        0..=1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Why the engine's clock advanced: a normal busy-network tick, or a
/// skip-ahead jump to the next core / memory-controller event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvanceCause {
    /// Network or coherence work pending: the clock moved by one.
    Tick,
    /// Idle fabric; jumped to the next core wakeup.
    WakeCore,
    /// Idle fabric; jumped to the next memory-controller event.
    WakeMem,
    /// Traffic in flight but nothing ready: jumped to the network's own
    /// next-event horizon (per-router `next_ready` minimum).
    WakeNet,
}

/// Receiver of cycle-domain network observations.
///
/// Every method has a no-op default, so an observer implements only
/// what it cares about. Parameters are plain `usize`/`u64` so call
/// sites in the hot path never cast. Observers must not feed anything
/// back into the simulation.
pub trait NetObserver: fmt::Debug {
    /// Router `r` was ticked while active; `occ` is the total number of
    /// flits buffered across its input queues at the start of the tick.
    fn router_cycle(&mut self, r: usize, occ: usize) {
        let _ = (r, occ);
    }

    /// Router `r` moved one flit to output port `port`
    /// (`0..LINKS_PER_ROUTER` = mesh links N/E/S/W; higher ports are
    /// local ejection / hub hand-off).
    fn flit_routed(&mut self, r: usize, port: usize) {
        let _ = (r, port);
    }

    /// Router `r` had a flit ready but the downstream buffer was full.
    fn credit_stall(&mut self, r: usize) {
        let _ = r;
    }

    /// Hub `cluster` transmitted `flits` flits on the optical waveguide
    /// in `kind` mode.
    fn hub_tx(&mut self, cluster: usize, kind: TrafficKind, flits: u64) {
        let _ = (cluster, kind, flits);
    }

    /// The engine advanced the clock by `delta` cycles for `cause`.
    /// `ticked` reports whether the network actually ticked on the
    /// cycle the advance left from — the engine gates `Network::tick`
    /// on the next-event horizon, so the clock can step (for a core or
    /// memory wakeup) across cycles the network never simulates.
    fn advance(&mut self, delta: u64, cause: AdvanceCause, ticked: bool) {
        let _ = (delta, cause, ticked);
    }

    /// The epoch sampler closed an epoch covering `span` cycles;
    /// `coalesced` is true when a skip-ahead jump merged more than one
    /// nominal epoch into the sample.
    fn epoch(&mut self, span: u64, coalesced: bool) {
        let _ = (span, coalesced);
    }

    /// A layer flushed a batch of locally-accumulated counters. Hot
    /// paths that would otherwise cross the observer boundary per event
    /// (per router tick, per flit) may instead accumulate into a private
    /// [`NetProfile`] and hand it over in bulk — typically once per run.
    fn profile_part(&mut self, part: &NetProfile) {
        let _ = part;
    }

    /// The run finished after `cycles` simulated cycles.
    fn run_done(&mut self, cycles: u64) {
        let _ = cycles;
    }
}

/// Shared, cloneable handle the instrumented network layers hold.
///
/// `Default` is the disabled state: every forwarding method is a single
/// `Option` branch. All observer dispatch goes through these inline
/// forwarders — hot-path code never borrows the observer object
/// directly (`atac-audit` rule `probe-api`).
///
/// ## Thread confinement
///
/// Like [`crate::ProbeHandle`], the handle is `Rc`-based and therefore
/// deliberately `!Send`: each sweep worker owns its own collector, and
/// cross-worker aggregation happens by [`NetProfile::merge`] after the
/// fact, in deterministic planned-run order. This is a compile-time
/// guarantee:
///
/// ```compile_fail,E0277
/// use atac_trace::NetObsHandle;
/// fn requires_send<T: Send>(_: T) {}
/// requires_send(NetObsHandle::disabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetObsHandle(Option<Rc<RefCell<dyn NetObserver>>>);

impl NetObsHandle {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        NetObsHandle(None)
    }

    /// A handle forwarding to `obs`; clone it into each layer.
    pub fn attach<O: NetObserver + 'static>(obs: Rc<RefCell<O>>) -> Self {
        NetObsHandle(Some(obs))
    }

    /// Whether an observer is attached. Layers may use this to skip
    /// *sampling work* (like summing queue occupancy) when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forward an active-router tick with its queue occupancy.
    #[inline]
    pub fn router_cycle(&self, r: usize, occ: usize) {
        if let Some(o) = &self.0 {
            o.borrow_mut().router_cycle(r, occ);
        }
    }

    /// Forward a routed flit.
    #[inline]
    pub fn flit_routed(&self, r: usize, port: usize) {
        if let Some(o) = &self.0 {
            o.borrow_mut().flit_routed(r, port);
        }
    }

    /// Forward a credit stall.
    #[inline]
    pub fn credit_stall(&self, r: usize) {
        if let Some(o) = &self.0 {
            o.borrow_mut().credit_stall(r);
        }
    }

    /// Forward a hub transmission.
    #[inline]
    pub fn hub_tx(&self, cluster: usize, kind: TrafficKind, flits: u64) {
        if let Some(o) = &self.0 {
            o.borrow_mut().hub_tx(cluster, kind, flits);
        }
    }

    /// Forward a clock advance.
    #[inline]
    pub fn advance(&self, delta: u64, cause: AdvanceCause, ticked: bool) {
        if let Some(o) = &self.0 {
            o.borrow_mut().advance(delta, cause, ticked);
        }
    }

    /// Forward a batch of locally-accumulated counters.
    #[inline]
    pub fn profile_part(&self, part: &NetProfile) {
        if let Some(o) = &self.0 {
            o.borrow_mut().profile_part(part);
        }
    }

    /// Forward an epoch close.
    #[inline]
    pub fn epoch(&self, span: u64, coalesced: bool) {
        if let Some(o) = &self.0 {
            o.borrow_mut().epoch(span, coalesced);
        }
    }

    /// Forward the end-of-run cycle count.
    #[inline]
    pub fn run_done(&self, cycles: u64) {
        if let Some(o) = &self.0 {
            o.borrow_mut().run_done(cycles);
        }
    }
}

/// Per-router counters accumulated by [`NetProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterObs {
    /// Flits this router moved to any output (crossbar traversals).
    pub flits_routed: u64,
    /// Cycles a head flit was ready but the downstream buffer was full.
    pub credit_stall_cycles: u64,
    /// Cycles the router was on the active list and ticked; the
    /// complement of idleness (see [`RouterObs::idle_fraction`]).
    pub active_cycles: u64,
    /// Sum of start-of-tick input-queue occupancies over active cycles
    /// (mean occupancy = `occupancy_sum / active_cycles`).
    pub occupancy_sum: u64,
    /// Histogram of start-of-tick occupancies, bucketed by
    /// [`occ_bucket`].
    pub occupancy_hist: [u64; OCC_BUCKETS],
}

impl RouterObs {
    /// Fraction of the run this router was *not* ticked, in `0.0..=1.0`
    /// (the skip-ahead active-list design means idle routers are never
    /// visited).
    pub fn idle_fraction(&self, run_cycles: u64) -> f64 {
        if run_cycles == 0 {
            1.0
        } else {
            1.0 - (self.active_cycles.min(run_cycles) as f64 / run_cycles as f64)
        }
    }

    /// Mean input-queue occupancy over the router's active cycles.
    pub fn mean_occupancy(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.active_cycles as f64
        }
    }

    fn merge(&mut self, other: &RouterObs) {
        self.flits_routed += other.flits_routed;
        self.credit_stall_cycles += other.credit_stall_cycles;
        self.active_cycles += other.active_cycles;
        self.occupancy_sum += other.occupancy_sum;
        for (a, b) in self.occupancy_hist.iter_mut().zip(&other.occupancy_hist) {
            *a += *b;
        }
    }
}

/// The standard [`NetObserver`]: accumulates every observation into
/// mergeable integer counters. One per run (or per worker); aggregate
/// with [`NetProfile::merge`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetProfile {
    /// Simulated cycles, summed over merged runs ([`NetObserver::run_done`]).
    pub cycles: u64,
    /// Per-router counters, indexed by router (= tile) id.
    pub routers: Vec<RouterObs>,
    /// Flits per mesh link, indexed `router * LINKS_PER_ROUTER + port`.
    pub link_flits: Vec<u64>,
    /// Optical flits sent per hub in unicast mode, indexed by cluster.
    pub hub_unicast_flits: Vec<u64>,
    /// Optical flits sent per hub in broadcast mode, indexed by cluster.
    pub hub_broadcast_flits: Vec<u64>,
    /// Network ticks actually executed ([`NetObserver::advance`] calls
    /// with `ticked == true`). The engine gates `Network::tick` on the
    /// next-event horizon, so this counts simulated network cycles, not
    /// engine loop iterations.
    pub ticks_executed: u64,
    /// Cycles the network never simulated: whole advances the horizon
    /// gated out, plus `delta - 1` for every clock jump. The invariant
    /// `ticks_executed + cycles_skipped == cycles` is pinned by tests.
    pub cycles_skipped: u64,
    /// Skip-ahead advances that jumped more than one cycle.
    pub skip_jumps: u64,
    /// Skip-ahead advances targeting the next core wakeup.
    pub wake_core: u64,
    /// Skip-ahead advances targeting the next memory-controller event.
    pub wake_mem: u64,
    /// Skip-ahead advances targeting the network's next-event horizon.
    pub wake_net: u64,
    /// Epochs closed by the sampler.
    pub epochs_closed: u64,
    /// Epochs whose span exceeded the nominal epoch length (a
    /// skip-ahead jump coalesced several nominal epochs into one).
    pub coalesced_epochs: u64,
    /// Largest single epoch span observed, in cycles.
    pub max_epoch_span: u64,
    /// Histogram of packet-run lengths: flits moved per switch grant
    /// through the mesh's wormhole path, bucketed by [`run_bucket`].
    /// Bucket 0 counts single-flit grants (head/tail flits and
    /// ejection); higher buckets count the bulk body-run transfers the
    /// packet-granular fast path coalesces into one grant.
    pub run_len_hist: [u64; RUN_BUCKETS],
    /// Switch-arbitration grants decided by the per-router request
    /// bitset (rotate + `trailing_zeros`).
    pub bitset_grants: u64,
    /// Switch-arbitration grants decided by the scalar fallback scan
    /// (routers whose candidate count exceeds the bitset word).
    pub scalar_grants: u64,
}

fn ensure_len<T: Clone + Default>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

impl NetProfile {
    /// An empty profile (merge identity); counters grow on demand as
    /// router/cluster indices are observed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total flits routed across all routers.
    pub fn total_flits_routed(&self) -> u64 {
        self.routers.iter().map(|r| r.flits_routed).sum()
    }

    /// Total credit-stall cycles across all routers.
    pub fn total_credit_stalls(&self) -> u64 {
        self.routers.iter().map(|r| r.credit_stall_cycles).sum()
    }

    /// Fraction of clock advances that were skip-ahead jumps' skipped
    /// cycles — i.e. cycles the engine did *not* simulate, in
    /// `0.0..=1.0`. High values mean skip-ahead is already effective;
    /// low values mean the fabric is busy nearly every cycle.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.ticks_executed + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }

    /// Total router-cycles the run advanced through: one per observed
    /// router per simulated cycle. This is the router-granularity
    /// analogue of [`NetProfile::cycles`] — the denominator for
    /// [`NetProfile::router_skip_fraction`]. (Routers that were never
    /// activated are not in `routers` and are excluded, which only
    /// under-counts the skipped share.)
    pub fn router_cycles(&self) -> u64 {
        self.routers.len() as u64 * self.cycles
    }

    /// Router ticks actually executed: cycles a router was pulled off
    /// the mesh's active list and processed. Every other router-cycle
    /// was jumped over by that router's next-event horizon.
    pub fn router_ticks(&self) -> u64 {
        self.routers.iter().map(|r| r.active_cycles).sum()
    }

    /// Router-cycles the per-router next-event horizon skipped without
    /// processing. Ledger invariant: `router_ticks() +
    /// router_cycles_skipped() == router_cycles()`.
    pub fn router_cycles_skipped(&self) -> u64 {
        self.router_cycles().saturating_sub(self.router_ticks())
    }

    /// Fraction of router-cycles skipped by the per-router horizon, in
    /// `0.0..=1.0`. Unlike [`NetProfile::skip_fraction`] — which only
    /// counts cycles where the *whole* network stood still — this
    /// credits every idle region the mesh jumped while other routers
    /// stayed busy, so it approaches the routers' aggregate idle
    /// fraction on a well-gated mesh.
    pub fn router_skip_fraction(&self) -> f64 {
        let total = self.router_cycles();
        if total == 0 {
            0.0
        } else {
            self.router_cycles_skipped() as f64 / total as f64
        }
    }

    /// Total switch grants recorded in the run-length histogram (one
    /// grant per entry, whatever the run length).
    pub fn total_grants(&self) -> u64 {
        self.run_len_hist.iter().sum()
    }

    /// Fold another profile into this one. Element-wise integer sums
    /// (plus `max` for [`NetProfile::max_epoch_span`]), so the result is
    /// independent of merge order and merging with an empty profile is
    /// the identity — both properties are pinned by tests, which is what
    /// lets ATAC_JOBS workers each own a collector and aggregate later.
    pub fn merge(&mut self, other: &NetProfile) {
        self.cycles += other.cycles;
        ensure_len(&mut self.routers, other.routers.len());
        for (a, b) in self.routers.iter_mut().zip(&other.routers) {
            a.merge(b);
        }
        ensure_len(&mut self.link_flits, other.link_flits.len());
        for (a, b) in self.link_flits.iter_mut().zip(&other.link_flits) {
            *a += *b;
        }
        ensure_len(&mut self.hub_unicast_flits, other.hub_unicast_flits.len());
        for (a, b) in self
            .hub_unicast_flits
            .iter_mut()
            .zip(&other.hub_unicast_flits)
        {
            *a += *b;
        }
        ensure_len(
            &mut self.hub_broadcast_flits,
            other.hub_broadcast_flits.len(),
        );
        for (a, b) in self
            .hub_broadcast_flits
            .iter_mut()
            .zip(&other.hub_broadcast_flits)
        {
            *a += *b;
        }
        self.ticks_executed += other.ticks_executed;
        self.cycles_skipped += other.cycles_skipped;
        self.skip_jumps += other.skip_jumps;
        self.wake_core += other.wake_core;
        self.wake_mem += other.wake_mem;
        self.wake_net += other.wake_net;
        self.epochs_closed += other.epochs_closed;
        self.coalesced_epochs += other.coalesced_epochs;
        self.max_epoch_span = self.max_epoch_span.max(other.max_epoch_span);
        for (a, b) in self.run_len_hist.iter_mut().zip(&other.run_len_hist) {
            *a += *b;
        }
        self.bitset_grants += other.bitset_grants;
        self.scalar_grants += other.scalar_grants;
    }

    fn router_mut(&mut self, r: usize) -> &mut RouterObs {
        ensure_len(&mut self.routers, r + 1);
        &mut self.routers[r]
    }
}

impl NetObserver for NetProfile {
    fn router_cycle(&mut self, r: usize, occ: usize) {
        let ro = self.router_mut(r);
        ro.active_cycles += 1;
        ro.occupancy_sum += occ as u64;
        ro.occupancy_hist[occ_bucket(occ)] += 1;
    }

    fn flit_routed(&mut self, r: usize, port: usize) {
        self.router_mut(r).flits_routed += 1;
        if port < LINKS_PER_ROUTER {
            let idx = r * LINKS_PER_ROUTER + port;
            ensure_len(&mut self.link_flits, idx + 1);
            self.link_flits[idx] += 1;
        }
    }

    fn credit_stall(&mut self, r: usize) {
        self.router_mut(r).credit_stall_cycles += 1;
    }

    fn hub_tx(&mut self, cluster: usize, kind: TrafficKind, flits: u64) {
        match kind {
            TrafficKind::Unicast => {
                ensure_len(&mut self.hub_unicast_flits, cluster + 1);
                self.hub_unicast_flits[cluster] += flits;
            }
            TrafficKind::Broadcast => {
                ensure_len(&mut self.hub_broadcast_flits, cluster + 1);
                self.hub_broadcast_flits[cluster] += flits;
            }
        }
    }

    fn advance(&mut self, delta: u64, cause: AdvanceCause, ticked: bool) {
        if ticked {
            self.ticks_executed += 1;
            self.cycles_skipped += delta - 1;
        } else {
            self.cycles_skipped += delta;
        }
        if delta > 1 {
            self.skip_jumps += 1;
        }
        match cause {
            AdvanceCause::Tick => {}
            AdvanceCause::WakeCore => self.wake_core += 1,
            AdvanceCause::WakeMem => self.wake_mem += 1,
            AdvanceCause::WakeNet => self.wake_net += 1,
        }
    }

    fn profile_part(&mut self, part: &NetProfile) {
        self.merge(part);
    }

    fn epoch(&mut self, span: u64, coalesced: bool) {
        self.epochs_closed += 1;
        if coalesced {
            self.coalesced_epochs += 1;
        }
        self.max_epoch_span = self.max_epoch_span.max(span);
    }

    fn run_done(&mut self, cycles: u64) {
        self.cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile(seed: u64) -> NetProfile {
        let mut p = NetProfile::new();
        p.router_cycle(0, 0);
        p.router_cycle(2, 7);
        p.flit_routed(2, 1);
        p.flit_routed(2, 5); // non-link port: no link counter
        p.credit_stall(1);
        p.hub_tx(0, TrafficKind::Unicast, 3 + seed);
        p.hub_tx(1, TrafficKind::Broadcast, 8);
        p.advance(1, AdvanceCause::Tick, true);
        p.advance(5, AdvanceCause::WakeCore, true);
        p.advance(2 + seed, AdvanceCause::WakeMem, true);
        p.advance(3, AdvanceCause::WakeNet, true);
        p.epoch(1000, false);
        p.epoch(2500 + seed, true);
        p.run_done(4 + 4 + 1 + 2 + seed); // ticks (4) + skipped (4 + 1 + 2 + seed)
        p
    }

    #[test]
    fn collects_router_link_and_hub_counters() {
        let p = sample_profile(0);
        assert_eq!(p.routers.len(), 3);
        assert_eq!(p.routers[2].active_cycles, 1);
        assert_eq!(p.routers[2].occupancy_sum, 7);
        assert_eq!(p.routers[2].occupancy_hist[occ_bucket(7)], 1);
        assert_eq!(p.routers[2].flits_routed, 2);
        assert_eq!(p.link_flits[2 * LINKS_PER_ROUTER + 1], 1);
        assert_eq!(
            p.link_flits.iter().sum::<u64>(),
            1,
            "non-link ports charge no link"
        );
        assert_eq!(p.routers[1].credit_stall_cycles, 1);
        assert_eq!(p.hub_unicast_flits[0], 3);
        assert_eq!(p.hub_broadcast_flits[1], 8);
        assert_eq!(p.total_flits_routed(), 2);
        assert_eq!(p.total_credit_stalls(), 1);
    }

    #[test]
    fn skip_ahead_accounting_and_invariant() {
        let p = sample_profile(0);
        assert_eq!(p.ticks_executed, 4);
        assert_eq!(p.cycles_skipped, 7); // (5-1) + (2-1) + (3-1)
        assert_eq!(p.skip_jumps, 3);
        assert_eq!(p.wake_core, 1);
        assert_eq!(p.wake_mem, 1);
        assert_eq!(p.wake_net, 1);
        assert_eq!(p.ticks_executed + p.cycles_skipped, p.cycles);
        assert!((p.skip_fraction() - 7.0 / 11.0).abs() < 1e-12);
        assert_eq!(p.epochs_closed, 2);
        assert_eq!(p.coalesced_epochs, 1);
        assert_eq!(p.max_epoch_span, 2500);
    }

    #[test]
    fn horizon_gated_advances_skip_whole_cycles() {
        let mut p = NetProfile::new();
        p.advance(1, AdvanceCause::Tick, true); // simulated network cycle
        p.advance(1, AdvanceCause::WakeCore, false); // clock stepped; network gated out
        p.advance(4, AdvanceCause::WakeNet, false); // jump across gated-out cycles
        p.run_done(6);
        assert_eq!(p.ticks_executed, 1);
        assert_eq!(p.cycles_skipped, 5);
        assert_eq!(p.skip_jumps, 1, "only the delta > 1 advance is a jump");
        assert_eq!(p.ticks_executed + p.cycles_skipped, p.cycles);
    }

    #[test]
    fn router_granularity_ledger_tiles_router_time() {
        let mut p = NetProfile::new();
        // Three routers observed over a 10-cycle run: router 0 ticked
        // 7 cycles, router 1 ticked 2, router 2 ticked 1.
        for _ in 0..7 {
            p.router_cycle(0, 1);
        }
        p.router_cycle(1, 0);
        p.router_cycle(1, 3);
        p.router_cycle(2, 2);
        p.run_done(10);
        assert_eq!(p.router_cycles(), 30);
        assert_eq!(p.router_ticks(), 10);
        assert_eq!(p.router_cycles_skipped(), 20);
        assert_eq!(
            p.router_ticks() + p.router_cycles_skipped(),
            p.router_cycles()
        );
        assert!((p.router_skip_fraction() - 20.0 / 30.0).abs() < 1e-12);
        // Empty profile: both fractions are defined and zero.
        let empty = NetProfile::new();
        assert_eq!(empty.router_cycles(), 0);
        assert_eq!(empty.router_skip_fraction(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let p = sample_profile(1);
        let mut merged = NetProfile::new();
        merged.merge(&p);
        assert_eq!(merged, p, "empty.merge(p) == p");
        let mut q = p.clone();
        q.merge(&NetProfile::new());
        assert_eq!(q, p, "p.merge(empty) == p");
    }

    #[test]
    fn merge_is_worker_order_invariant() {
        let parts = [sample_profile(0), sample_profile(7), sample_profile(42)];
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
        let merged: Vec<NetProfile> = orders
            .iter()
            .map(|order| {
                let mut acc = NetProfile::new();
                for &i in order {
                    acc.merge(&parts[i]);
                }
                acc
            })
            .collect();
        assert_eq!(merged[0], merged[1]);
        assert_eq!(merged[0], merged[2]);
        // And the invariant survives aggregation.
        assert_eq!(
            merged[0].ticks_executed + merged[0].cycles_skipped,
            merged[0].cycles
        );
    }

    #[test]
    fn merge_resizes_to_the_larger_topology() {
        let mut small = NetProfile::new();
        small.router_cycle(0, 1);
        let mut big = NetProfile::new();
        big.router_cycle(5, 2);
        big.flit_routed(5, 3);
        small.merge(&big);
        assert_eq!(small.routers.len(), 6);
        assert_eq!(small.routers[5].active_cycles, 1);
        assert_eq!(small.link_flits[5 * LINKS_PER_ROUTER + 3], 1);
    }

    #[test]
    fn occupancy_buckets_are_dense_and_monotone() {
        assert_eq!(occ_bucket(0), 0);
        assert_eq!(occ_bucket(1), 1);
        assert_eq!(occ_bucket(2), 1);
        assert_eq!(occ_bucket(3), 2);
        assert_eq!(occ_bucket(5), 3);
        assert_eq!(occ_bucket(9), 4);
        assert_eq!(occ_bucket(16), 4);
        assert_eq!(occ_bucket(17), 5);
        assert_eq!(occ_bucket(usize::MAX), 5);
        assert_eq!(OCC_BUCKET_LABELS.len(), OCC_BUCKETS);
    }

    #[test]
    fn run_buckets_are_dense_and_monotone() {
        assert_eq!(run_bucket(0), 0);
        assert_eq!(run_bucket(1), 0);
        assert_eq!(run_bucket(2), 1);
        assert_eq!(run_bucket(3), 2);
        assert_eq!(run_bucket(4), 2);
        assert_eq!(run_bucket(5), 3);
        assert_eq!(run_bucket(8), 3);
        assert_eq!(run_bucket(9), 4);
        assert_eq!(run_bucket(16), 4);
        assert_eq!(run_bucket(17), 5);
        assert_eq!(run_bucket(usize::MAX), 5);
        assert_eq!(RUN_BUCKET_LABELS.len(), RUN_BUCKETS);
    }

    #[test]
    fn merge_accumulates_fast_path_counters() {
        let mut a = NetProfile::new();
        a.run_len_hist[run_bucket(1)] = 3;
        a.bitset_grants = 5;
        let mut b = NetProfile::new();
        b.run_len_hist[run_bucket(1)] = 2;
        b.run_len_hist[run_bucket(7)] = 4;
        b.bitset_grants = 1;
        b.scalar_grants = 2;
        a.merge(&b);
        assert_eq!(a.run_len_hist[0], 5);
        assert_eq!(a.run_len_hist[run_bucket(7)], 4);
        assert_eq!(a.total_grants(), 9);
        assert_eq!(a.bitset_grants, 6);
        assert_eq!(a.scalar_grants, 2);
        // profile_part carries the new counters across the batch flush.
        let obs = Rc::new(RefCell::new(NetProfile::new()));
        NetObsHandle::attach(Rc::clone(&obs)).profile_part(&a);
        assert_eq!(*obs.borrow(), a);
    }

    #[test]
    fn derived_metrics() {
        let r = RouterObs {
            active_cycles: 25,
            occupancy_sum: 50,
            ..Default::default()
        };
        assert!((r.idle_fraction(100) - 0.75).abs() < 1e-12);
        assert!((r.mean_occupancy() - 2.0).abs() < 1e-12);
        assert_eq!(RouterObs::default().idle_fraction(0), 1.0);
        assert_eq!(RouterObs::default().mean_occupancy(), 0.0);
        assert_eq!(NetProfile::new().skip_fraction(), 0.0);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = NetObsHandle::default();
        assert!(!h.is_enabled());
        h.router_cycle(0, 3);
        h.flit_routed(0, 1);
        h.credit_stall(0);
        h.hub_tx(0, TrafficKind::Unicast, 2);
        h.advance(4, AdvanceCause::WakeCore, true);
        h.epoch(100, false);
        h.run_done(10);
    }

    #[test]
    fn attached_handle_forwards_and_shares() {
        let obs = Rc::new(RefCell::new(NetProfile::new()));
        let h = NetObsHandle::attach(Rc::clone(&obs));
        let h2 = h.clone();
        assert!(h.is_enabled());
        h.flit_routed(1, 0);
        h2.flit_routed(1, 0);
        h.advance(3, AdvanceCause::WakeMem, true);
        assert_eq!(obs.borrow().routers[1].flits_routed, 2);
        assert_eq!(obs.borrow().cycles_skipped, 2);
    }

    #[test]
    fn profile_part_merges_batched_counters() {
        // A layer accumulates privately and flushes once: the receiving
        // profile ends up exactly as if every event had been forwarded.
        let mut local = NetProfile::new();
        local.router_cycle(3, 2);
        local.flit_routed(3, 1);
        local.credit_stall(3);

        let obs = Rc::new(RefCell::new(NetProfile::new()));
        let h = NetObsHandle::attach(Rc::clone(&obs));
        h.advance(1, AdvanceCause::Tick, true);
        h.profile_part(&local);
        h.run_done(1);

        let mut direct = NetProfile::new();
        direct.advance(1, AdvanceCause::Tick, true);
        direct.router_cycle(3, 2);
        direct.flit_routed(3, 1);
        direct.credit_stall(3);
        direct.run_done(1);
        assert_eq!(*obs.borrow(), direct);
        // Disabled handles ignore the flush.
        NetObsHandle::disabled().profile_part(&local);
    }
}
