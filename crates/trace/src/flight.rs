//! The sweep flight recorder: an append-only JSONL event journal of
//! the parallel executor's *own* behavior.
//!
//! The simulator has a microscope (per-run [`crate::netobs`] counters,
//! [`crate::profile`] host phases); the sweep around it had none — no
//! view of worker utilization, cache hit rates, queue depth, stragglers,
//! or memory pressure. This module provides the event vocabulary, the
//! thread-safe [`FlightRecorder`] the executor fills, and the
//! emitter/validator pair for the journal file (`BENCH_flight.jsonl`,
//! schema `atac-flight-v1` — audit rule 11 keeps the pair in lock-step).
//!
//! Event kinds, one JSON object per line:
//!
//! * `meta` — first line: schema stamp, worker-pool size, planned keys.
//! * `span` — one worker lifecycle stretch: `claim` (cache probe +
//!   single-flight race), `simulate`, `publish`, or `idle`, with
//!   `start_s`/`end_s` host seconds relative to recorder creation.
//!   A worker's spans tile its timeline without overlap.
//! * `cache` — one run-cache outcome per planned key: `hit`, `miss`,
//!   or `wait` (joined a concurrent in-process simulation), with a
//!   `torn` flag when a miss recovered a truncated record.
//! * `sched` — the cost-aware scheduler's decision for one missing
//!   key: declared position, scheduled position, expected host seconds
//!   (absent when the cost model had no sample for the key).
//! * `queue` — a queue-depth snapshot at claim time: keys still
//!   unclaimed and workers currently busy.
//! * `rss` — a resident-set sample from `/proc/self/statm`.
//! * `end` — last line: wall seconds, runs simulated, peak RSS.
//!
//! Everything here observes the *host* clock and the host's memory map
//! only: flight data never enters the published run records, so an
//! `ATAC_FLIGHT=1` sweep is byte-identical to an unrecorded one (the
//! regression gate's exact-match proves it in CI). Disabled handles
//! cost one `Option` branch per call site, mirroring
//! [`crate::probe::ProbeHandle`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{parse, Json};

/// The schema string stamped on a journal's `meta` line.
pub const FLIGHT_SCHEMA: &str = "atac-flight-v1";

/// The schema family the reader accepts.
pub const FLIGHT_SCHEMA_PREFIX: &str = "atac-flight-v";

/// One worker lifecycle stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Cache probe, single-flight race, or condvar wait for a key.
    Claim,
    /// The simulation itself (leader path only).
    Simulate,
    /// Atomic publication of the freshly simulated record.
    Publish,
    /// Between runs, or the tail wait after the queue drained.
    Idle,
}

impl SpanKind {
    /// Every kind, display order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::Claim,
        SpanKind::Simulate,
        SpanKind::Publish,
        SpanKind::Idle,
    ];

    /// Stable lower-case journal name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Claim => "claim",
            SpanKind::Simulate => "simulate",
            SpanKind::Publish => "publish",
            SpanKind::Idle => "idle",
        }
    }

    fn from_name(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// How the run cache settled one planned key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Decoded from an already-published record.
    Hit,
    /// Simulated by the recording worker (and published).
    Miss,
    /// Joined a concurrent in-process simulation of the same key.
    Wait,
}

impl CacheOutcome {
    /// Every outcome, display order.
    pub const ALL: [CacheOutcome; 3] = [CacheOutcome::Hit, CacheOutcome::Miss, CacheOutcome::Wait];

    /// Stable lower-case journal name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Wait => "wait",
        }
    }

    fn from_name(s: &str) -> Option<CacheOutcome> {
        CacheOutcome::ALL.into_iter().find(|o| o.name() == s)
    }
}

/// One journal event (the `meta`/`end` framing lines live on
/// [`FlightLog`] itself, not in the event stream).
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// A worker lifecycle span; `key` is `None` for idle stretches.
    Span {
        /// Worker index in the pool.
        worker: u64,
        /// Lifecycle stretch kind.
        kind: SpanKind,
        /// The run key being worked on (absent while idle).
        key: Option<String>,
        /// Start, host seconds since recorder creation.
        start_s: f64,
        /// End, host seconds since recorder creation.
        end_s: f64,
    },
    /// A run-cache outcome for one planned key.
    Cache {
        /// The run key.
        key: String,
        /// How the cache settled it.
        outcome: CacheOutcome,
        /// Whether a miss recovered a torn (truncated) record.
        torn: bool,
    },
    /// The scheduler's placement of one missing key.
    Sched {
        /// The run key.
        key: String,
        /// Position in the plan's declared order.
        declared: u64,
        /// Position in the executed (cost-aware) order.
        scheduled: u64,
        /// Expected host seconds from the cost model, if it had one.
        expected_s: Option<f64>,
    },
    /// Queue depth at a claim: unclaimed keys and busy workers.
    Queue {
        /// Host seconds since recorder creation.
        t_s: f64,
        /// Keys not yet claimed by any worker.
        pending: u64,
        /// Workers currently inside a run.
        busy: u64,
    },
    /// A resident-set-size sample.
    Rss {
        /// Host seconds since recorder creation.
        t_s: f64,
        /// Resident bytes per `/proc/self/statm`.
        bytes: u64,
    },
}

/// A whole flight journal: the framing (`meta`/`end`) fields plus the
/// event stream. Produced by [`FlightRecorder::finish`] on the emitting
/// side and by [`parse_flight`] on the reading side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightLog {
    /// Worker-pool size.
    pub jobs: u64,
    /// Distinct run keys planned.
    pub planned: u64,
    /// The recorded events, journal order.
    pub events: Vec<FlightEvent>,
    /// Wall seconds from recorder creation to `finish`.
    pub wall_s: f64,
    /// Runs the pool actually simulated.
    pub runs: u64,
    /// High-water resident-set bytes across all samples.
    pub peak_rss_bytes: u64,
    /// Reader-side count of forward-compatibly skipped lines (unknown
    /// `type` from a newer writer); always 0 on freshly recorded logs.
    pub skipped: usize,
}

impl FlightLog {
    /// All span events.
    pub fn spans(&self) -> impl Iterator<Item = (u64, SpanKind, Option<&str>, f64, f64)> {
        self.events.iter().filter_map(|e| match e {
            FlightEvent::Span {
                worker,
                kind,
                key,
                start_s,
                end_s,
            } => Some((*worker, *kind, key.as_deref(), *start_s, *end_s)),
            _ => None,
        })
    }

    /// All cache-outcome events.
    pub fn cache_events(&self) -> impl Iterator<Item = (&str, CacheOutcome, bool)> {
        self.events.iter().filter_map(|e| match e {
            FlightEvent::Cache { key, outcome, torn } => Some((key.as_str(), *outcome, *torn)),
            _ => None,
        })
    }

    /// Count of cache events with the given outcome.
    pub fn outcome_count(&self, outcome: CacheOutcome) -> u64 {
        self.cache_events()
            .filter(|(_, o, _)| *o == outcome)
            .count() as u64
    }

    /// Render the journal as JSONL: `meta` line, events, `end` line.
    /// Floats print via `{:?}` so they round-trip bit-exactly.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\": \"{FLIGHT_SCHEMA}\", \"type\": \"meta\", \"jobs\": {}, \
             \"planned\": {}}}\n",
            self.jobs, self.planned
        ));
        for ev in &self.events {
            out.push_str(&event_json(ev));
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"type\": \"end\", \"t_s\": {:?}, \"runs\": {}, \"peak_rss_bytes\": {}}}\n",
            self.wall_s, self.runs, self.peak_rss_bytes
        ));
        out
    }
}

/// Minimal JSON string escaping (run keys are plain ASCII, but stay
/// safe against quotes and backslashes).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One event as a JSON object (no trailing newline).
pub fn event_json(ev: &FlightEvent) -> String {
    match ev {
        FlightEvent::Span {
            worker,
            kind,
            key,
            start_s,
            end_s,
        } => {
            let key = key
                .as_deref()
                .map(|k| format!(", \"key\": \"{}\"", escape(k)))
                .unwrap_or_default();
            format!(
                "{{\"type\": \"span\", \"worker\": {worker}, \"kind\": \"{}\"{key}, \
                 \"start_s\": {start_s:?}, \"end_s\": {end_s:?}}}",
                kind.name()
            )
        }
        FlightEvent::Cache { key, outcome, torn } => format!(
            "{{\"type\": \"cache\", \"key\": \"{}\", \"outcome\": \"{}\", \"torn\": {torn}}}",
            escape(key),
            outcome.name()
        ),
        FlightEvent::Sched {
            key,
            declared,
            scheduled,
            expected_s,
        } => {
            let expected = expected_s
                .map(|e| format!(", \"expected_s\": {e:?}"))
                .unwrap_or_default();
            format!(
                "{{\"type\": \"sched\", \"key\": \"{}\", \"declared\": {declared}, \
                 \"scheduled\": {scheduled}{expected}}}",
                escape(key)
            )
        }
        FlightEvent::Queue { t_s, pending, busy } => format!(
            "{{\"type\": \"queue\", \"t_s\": {t_s:?}, \"pending\": {pending}, \"busy\": {busy}}}"
        ),
        FlightEvent::Rss { t_s, bytes } => {
            format!("{{\"type\": \"rss\", \"t_s\": {t_s:?}, \"bytes\": {bytes}}}")
        }
    }
}

fn req_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or(format!("{what} line has no `{key}`"))
}

fn req_f64(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("{what} line has no `{key}`"))
}

fn req_str(obj: &Json, key: &str, what: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("{what} line has no `{key}`"))
}

/// Decode one non-framing journal line. `Ok(None)` is a
/// forward-compatible skip (unknown `type` from a newer writer).
pub fn parse_event(obj: &Json) -> Result<Option<FlightEvent>, String> {
    match obj.get("type").and_then(Json::as_str) {
        Some("span") => {
            let kind_name = req_str(obj, "kind", "span")?;
            let kind = SpanKind::from_name(&kind_name)
                .ok_or(format!("span line has unknown kind `{kind_name}`"))?;
            let key = obj.get("key").and_then(Json::as_str).map(str::to_string);
            if key.is_none() && kind != SpanKind::Idle {
                return Err(format!("`{kind_name}` span line has no `key`"));
            }
            Ok(Some(FlightEvent::Span {
                worker: req_u64(obj, "worker", "span")?,
                kind,
                key,
                start_s: req_f64(obj, "start_s", "span")?,
                end_s: req_f64(obj, "end_s", "span")?,
            }))
        }
        Some("cache") => {
            let outcome_name = req_str(obj, "outcome", "cache")?;
            let outcome = CacheOutcome::from_name(&outcome_name)
                .ok_or(format!("cache line has unknown outcome `{outcome_name}`"))?;
            Ok(Some(FlightEvent::Cache {
                key: req_str(obj, "key", "cache")?,
                outcome,
                torn: matches!(obj.get("torn"), Some(Json::Bool(true))),
            }))
        }
        Some("sched") => Ok(Some(FlightEvent::Sched {
            key: req_str(obj, "key", "sched")?,
            declared: req_u64(obj, "declared", "sched")?,
            scheduled: req_u64(obj, "scheduled", "sched")?,
            expected_s: obj.get("expected_s").and_then(Json::as_f64),
        })),
        Some("queue") => Ok(Some(FlightEvent::Queue {
            t_s: req_f64(obj, "t_s", "queue")?,
            pending: req_u64(obj, "pending", "queue")?,
            busy: req_u64(obj, "busy", "queue")?,
        })),
        Some("rss") => Ok(Some(FlightEvent::Rss {
            t_s: req_f64(obj, "t_s", "rss")?,
            bytes: req_u64(obj, "bytes", "rss")?,
        })),
        Some(_) => Ok(None), // a newer writer's type: skip, don't fail
        None => Err("journal line has no `type`".to_string()),
    }
}

/// Parse a whole journal. The first non-blank line must be a `meta`
/// line in the `atac-flight-v*` schema family; the last must be the
/// `end` line; unknown event types in between are skipped and counted.
/// The error names the first malformed line by 1-based number.
pub fn parse_flight(text: &str) -> Result<FlightLog, String> {
    let mut log = FlightLog::default();
    let mut saw_meta = false;
    let mut saw_end = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: String| format!("flight journal line {}: {e}", i + 1);
        if saw_end {
            return Err(at("event after the `end` line".to_string()));
        }
        let obj = parse(line).map_err(|e| at(e.to_string()))?;
        if !saw_meta {
            let schema = req_str(&obj, "schema", "meta").map_err(at)?;
            if !schema.starts_with(FLIGHT_SCHEMA_PREFIX) {
                return Err(at(format!("unrecognized flight schema `{schema}`")));
            }
            if obj.get("type").and_then(Json::as_str) != Some("meta") {
                return Err(at("journal must open with a `meta` line".to_string()));
            }
            log.jobs = req_u64(&obj, "jobs", "meta").map_err(at)?;
            log.planned = req_u64(&obj, "planned", "meta").map_err(at)?;
            saw_meta = true;
            continue;
        }
        if obj.get("type").and_then(Json::as_str) == Some("end") {
            log.wall_s = req_f64(&obj, "t_s", "end").map_err(at)?;
            log.runs = req_u64(&obj, "runs", "end").map_err(at)?;
            log.peak_rss_bytes = req_u64(&obj, "peak_rss_bytes", "end").map_err(at)?;
            saw_end = true;
            continue;
        }
        match parse_event(&obj).map_err(at)? {
            Some(ev) => log.events.push(ev),
            None => log.skipped += 1,
        }
    }
    if !saw_meta {
        return Err("flight journal has no `meta` line".to_string());
    }
    if !saw_end {
        return Err("flight journal has no `end` line".to_string());
    }
    Ok(log)
}

/// Structural summary of a validated journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightSummary {
    /// Worker-pool size from the `meta` line.
    pub jobs: u64,
    /// Planned keys from the `meta` line.
    pub planned: u64,
    /// Total decoded events.
    pub events: usize,
    /// Span events.
    pub spans: usize,
    /// `simulate` spans (== runs the pool executed).
    pub simulate_spans: usize,
    /// Cache `hit` outcomes.
    pub hits: u64,
    /// Cache `miss` outcomes.
    pub misses: u64,
    /// Cache `wait` outcomes.
    pub waits: u64,
    /// Misses that recovered a torn record.
    pub torn: u64,
    /// Queue-depth snapshots.
    pub queue_samples: usize,
    /// RSS samples.
    pub rss_samples: usize,
    /// Runs from the `end` line.
    pub runs: u64,
    /// Wall seconds from the `end` line.
    pub wall_s: f64,
    /// Peak resident bytes from the `end` line.
    pub peak_rss_bytes: u64,
}

/// Validate a journal structurally and summarize it: schema framing,
/// known vocabularies, per-span sanity (`start_s <= end_s`, worker
/// index inside the pool, timestamps inside the wall). Reconciliation
/// *across* events (span tiling, outcome counts vs the plan) is
/// [`reconcile`]'s job.
pub fn validate_flight_jsonl(text: &str) -> Result<FlightSummary, String> {
    let log = parse_flight(text)?;
    let mut summary = FlightSummary {
        jobs: log.jobs,
        planned: log.planned,
        events: log.events.len(),
        runs: log.runs,
        wall_s: log.wall_s,
        peak_rss_bytes: log.peak_rss_bytes,
        ..FlightSummary::default()
    };
    if log.jobs == 0 {
        return Err("meta line declares a zero-worker pool".to_string());
    }
    for ev in &log.events {
        match ev {
            FlightEvent::Span {
                worker,
                kind,
                start_s,
                end_s,
                ..
            } => {
                summary.spans += 1;
                if *kind == SpanKind::Simulate {
                    summary.simulate_spans += 1;
                }
                if *worker >= log.jobs {
                    return Err(format!(
                        "span names worker {worker} outside the {}-worker pool",
                        log.jobs
                    ));
                }
                if !(*start_s >= 0.0 && *end_s >= *start_s) {
                    return Err(format!(
                        "span runs backwards: start_s {start_s:?} > end_s {end_s:?}"
                    ));
                }
            }
            FlightEvent::Cache { outcome, torn, .. } => {
                match outcome {
                    CacheOutcome::Hit => summary.hits += 1,
                    CacheOutcome::Miss => summary.misses += 1,
                    CacheOutcome::Wait => summary.waits += 1,
                }
                if *torn {
                    summary.torn += 1;
                }
            }
            FlightEvent::Sched { .. } => {}
            FlightEvent::Queue { .. } => summary.queue_samples += 1,
            FlightEvent::Rss { .. } => summary.rss_samples += 1,
        }
    }
    Ok(summary)
}

/// Cross-event reconciliation: the invariants the executor's recording
/// discipline guarantees. Returns the first broken invariant.
///
/// * `simulate` spans == the `end` line's `runs`.
/// * cache `hit + miss + wait` outcomes == planned keys.
/// * each worker's spans tile its timeline without overlap.
pub fn reconcile(log: &FlightLog) -> Result<(), String> {
    let simulated = log
        .spans()
        .filter(|(_, kind, ..)| *kind == SpanKind::Simulate)
        .count() as u64;
    if simulated != log.runs {
        return Err(format!(
            "{simulated} simulate span(s) but the end line reports {} run(s)",
            log.runs
        ));
    }
    let (hits, misses, waits) = (
        log.outcome_count(CacheOutcome::Hit),
        log.outcome_count(CacheOutcome::Miss),
        log.outcome_count(CacheOutcome::Wait),
    );
    if hits + misses + waits != log.planned {
        return Err(format!(
            "cache outcomes do not cover the plan: {hits} hit + {misses} miss + \
             {waits} wait != {} planned",
            log.planned
        ));
    }
    let mut per_worker: Vec<Vec<(f64, f64)>> = vec![Vec::new(); log.jobs as usize];
    for (worker, _, _, start_s, end_s) in log.spans() {
        per_worker[worker as usize].push((start_s, end_s));
    }
    const EPS: f64 = 1e-9;
    for (w, spans) in per_worker.iter_mut().enumerate() {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in spans.windows(2) {
            if pair[0].1 > pair[1].0 + EPS {
                return Err(format!(
                    "worker {w} spans overlap: [{:?}, {:?}] then [{:?}, {:?}]",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
    }
    Ok(())
}

/// Current resident-set size in bytes, sampled from `/proc/self/statm`
/// (field 2, resident pages). `None` off Linux or when procfs is
/// unreadable. Pages are assumed 4 KiB — the size on every runner this
/// observability targets; a larger-page host merely under-reports, and
/// nothing result-bearing reads this.
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// The thread-safe journal collector the executor fills. Unlike the
/// `Rc`-based per-worker observers ([`crate::profile::HostProfiler`],
/// [`crate::netobs::NetObsHandle`]), flight events come from *every*
/// pool worker into one journal, so the event list sits behind a mutex
/// — contended only per event, never per simulated cycle.
#[derive(Debug)]
pub struct FlightRecorder {
    t0: Instant,
    jobs: u64,
    planned: u64,
    events: Mutex<Vec<FlightEvent>>,
    peak_rss: AtomicU64,
}

impl FlightRecorder {
    /// A recorder for a pool of `jobs` workers over `planned` keys,
    /// anchored at the current instant.
    pub fn new(jobs: u64, planned: u64) -> Arc<Self> {
        let rec = Arc::new(FlightRecorder {
            t0: Instant::now(),
            jobs,
            planned,
            events: Mutex::new(Vec::new()),
            peak_rss: AtomicU64::new(0),
        });
        rec.sample_rss();
        rec
    }

    /// Host seconds since recorder creation.
    pub fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn push(&self, ev: FlightEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ev);
    }

    /// Record one worker lifecycle span.
    pub fn span(&self, worker: u64, kind: SpanKind, key: Option<&str>, start_s: f64, end_s: f64) {
        self.push(FlightEvent::Span {
            worker,
            kind,
            key: key.map(str::to_string),
            start_s,
            end_s,
        });
    }

    /// Record one cache outcome.
    pub fn cache(&self, key: &str, outcome: CacheOutcome, torn: bool) {
        self.push(FlightEvent::Cache {
            key: key.to_string(),
            outcome,
            torn,
        });
    }

    /// Record one scheduling decision.
    pub fn sched(&self, key: &str, declared: u64, scheduled: u64, expected_s: Option<f64>) {
        self.push(FlightEvent::Sched {
            key: key.to_string(),
            declared,
            scheduled,
            expected_s,
        });
    }

    /// Record a queue-depth snapshot.
    pub fn queue(&self, pending: u64, busy: u64) {
        self.push(FlightEvent::Queue {
            t_s: self.now(),
            pending,
            busy,
        });
    }

    /// Sample the resident set, record it, and fold the high-water mark.
    pub fn sample_rss(&self) {
        if let Some(bytes) = current_rss_bytes() {
            self.peak_rss.fetch_max(bytes, Ordering::Relaxed);
            self.push(FlightEvent::Rss {
                t_s: self.now(),
                bytes,
            });
        }
    }

    /// Close the journal: final RSS sample, wall stamp, and the drained
    /// event stream. `runs` is the number of simulations the pool
    /// actually executed (the `end`-line reconciliation anchor).
    pub fn finish(&self, runs: u64) -> FlightLog {
        self.sample_rss();
        let events = std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        FlightLog {
            jobs: self.jobs,
            planned: self.planned,
            events,
            wall_s: self.now(),
            runs,
            peak_rss_bytes: self.peak_rss.load(Ordering::Relaxed),
            skipped: 0,
        }
    }
}

/// The handle instrumented code holds: one branch per call when
/// disabled, an `Arc` clone when enabled — safe to share across the
/// executor's worker threads.
#[derive(Debug, Clone, Default)]
pub struct FlightHandle(Option<Arc<FlightRecorder>>);

impl FlightHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        FlightHandle(None)
    }

    /// A handle feeding `recorder`.
    pub fn attach(recorder: Arc<FlightRecorder>) -> Self {
        FlightHandle(Some(recorder))
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Host seconds since recorder creation (0 when disabled — callers
    /// gate span bookkeeping on [`Self::enabled`]).
    pub fn now(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |r| r.now())
    }

    /// Record one worker lifecycle span.
    pub fn span(&self, worker: u64, kind: SpanKind, key: Option<&str>, start_s: f64, end_s: f64) {
        if let Some(r) = &self.0 {
            r.span(worker, kind, key, start_s, end_s);
        }
    }

    /// Record one cache outcome.
    pub fn cache(&self, key: &str, outcome: CacheOutcome, torn: bool) {
        if let Some(r) = &self.0 {
            r.cache(key, outcome, torn);
        }
    }

    /// Record one scheduling decision.
    pub fn sched(&self, key: &str, declared: u64, scheduled: u64, expected_s: Option<f64>) {
        if let Some(r) = &self.0 {
            r.sched(key, declared, scheduled, expected_s);
        }
    }

    /// Record a queue-depth snapshot.
    pub fn queue(&self, pending: u64, busy: u64) {
        if let Some(r) = &self.0 {
            r.queue(pending, busy);
        }
    }

    /// Sample the resident set into the journal.
    pub fn sample_rss(&self) {
        if let Some(r) = &self.0 {
            r.sample_rss();
        }
    }

    /// Close the journal, if one is attached.
    pub fn finish(&self, runs: u64) -> Option<FlightLog> {
        self.0.as_ref().map(|r| r.finish(runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> FlightLog {
        FlightLog {
            jobs: 2,
            planned: 3,
            events: vec![
                FlightEvent::Cache {
                    key: "k-hit".into(),
                    outcome: CacheOutcome::Hit,
                    torn: false,
                },
                FlightEvent::Sched {
                    key: "k-a".into(),
                    declared: 0,
                    scheduled: 1,
                    expected_s: Some(1.5),
                },
                FlightEvent::Sched {
                    key: "k-b".into(),
                    declared: 1,
                    scheduled: 0,
                    expected_s: None,
                },
                FlightEvent::Queue {
                    t_s: 0.0,
                    pending: 2,
                    busy: 0,
                },
                FlightEvent::Span {
                    worker: 0,
                    kind: SpanKind::Claim,
                    key: Some("k-b".into()),
                    start_s: 0.0,
                    end_s: 0.1,
                },
                FlightEvent::Span {
                    worker: 0,
                    kind: SpanKind::Simulate,
                    key: Some("k-b".into()),
                    start_s: 0.1,
                    end_s: 1.9,
                },
                FlightEvent::Span {
                    worker: 0,
                    kind: SpanKind::Publish,
                    key: Some("k-b".into()),
                    start_s: 1.9,
                    end_s: 2.0,
                },
                FlightEvent::Cache {
                    key: "k-b".into(),
                    outcome: CacheOutcome::Miss,
                    torn: true,
                },
                FlightEvent::Span {
                    worker: 1,
                    kind: SpanKind::Claim,
                    key: Some("k-a".into()),
                    start_s: 0.0,
                    end_s: 1.2,
                },
                FlightEvent::Cache {
                    key: "k-a".into(),
                    outcome: CacheOutcome::Wait,
                    torn: false,
                },
                FlightEvent::Span {
                    worker: 1,
                    kind: SpanKind::Idle,
                    key: None,
                    start_s: 1.2,
                    end_s: 2.0,
                },
                FlightEvent::Rss {
                    t_s: 1.0,
                    bytes: 4096,
                },
            ],
            wall_s: 2.0,
            runs: 1,
            peak_rss_bytes: 4096,
            skipped: 0,
        }
    }

    #[test]
    fn journal_roundtrips_bit_exactly() {
        let log = sample_log();
        let text = log.to_jsonl();
        assert!(text.starts_with("{\"schema\": \"atac-flight-v1\", \"type\": \"meta\""));
        assert!(text.trim_end().ends_with("\"peak_rss_bytes\": 4096}"));
        let back = parse_flight(&text).expect("parses");
        assert_eq!(back, log, "journal must round-trip exactly");
    }

    #[test]
    fn validator_summarizes_and_reconciles() {
        let log = sample_log();
        let s = validate_flight_jsonl(&log.to_jsonl()).expect("valid");
        assert_eq!(s.jobs, 2);
        assert_eq!(s.planned, 3);
        assert_eq!(s.spans, 5);
        assert_eq!(s.simulate_spans, 1);
        assert_eq!((s.hits, s.misses, s.waits, s.torn), (1, 1, 1, 1));
        assert_eq!(s.queue_samples, 1);
        assert_eq!(s.rss_samples, 1);
        assert_eq!(s.peak_rss_bytes, 4096);
        reconcile(&log).expect("invariants hold");
    }

    #[test]
    fn reconcile_names_the_broken_invariant() {
        let mut log = sample_log();
        log.runs = 5;
        let err = reconcile(&log).expect_err("run count drifted");
        assert!(err.contains("1 simulate span(s)"), "{err}");
        let mut log = sample_log();
        log.planned = 7;
        let err = reconcile(&log).expect_err("outcomes do not cover");
        assert!(err.contains("7 planned"), "{err}");
        let mut log = sample_log();
        log.events.push(FlightEvent::Span {
            worker: 0,
            kind: SpanKind::Idle,
            key: None,
            start_s: 0.5,
            end_s: 0.6,
        });
        let err = reconcile(&log).expect_err("overlapping spans");
        assert!(err.contains("worker 0 spans overlap"), "{err}");
    }

    #[test]
    fn parser_is_forward_compatible_but_not_lax() {
        let mut text = sample_log().to_jsonl();
        // Splice a newer writer's event type before the end line: skipped.
        let end = text.rfind("{\"type\": \"end\"").expect("end line");
        text.insert_str(end, "{\"type\": \"warp\", \"factor\": 9}\n");
        let log = parse_flight(&text).expect("future event type skips");
        assert_eq!(log.skipped, 1);
        // No meta, foreign schema, unknown span kind, backwards span,
        // missing end: all errors.
        assert!(parse_flight("{\"type\": \"end\", \"t_s\": 1.0}").is_err());
        assert!(parse_flight(
            "{\"schema\": \"other-v1\", \"type\": \"meta\", \"jobs\": 1, \"planned\": 0}\n"
        )
        .is_err());
        let meta =
            "{\"schema\": \"atac-flight-v1\", \"type\": \"meta\", \"jobs\": 1, \"planned\": 0}\n";
        let end = "{\"type\": \"end\", \"t_s\": 1.0, \"runs\": 0, \"peak_rss_bytes\": 0}\n";
        assert!(parse_flight(meta).is_err(), "end line is mandatory");
        assert!(parse_flight(&format!(
            "{meta}{{\"type\": \"span\", \"worker\": 0, \"kind\": \"nap\", \"start_s\": 0.0, \"end_s\": 1.0}}\n{end}"
        ))
        .is_err());
        let bad_span = format!(
            "{meta}{{\"type\": \"span\", \"worker\": 0, \"kind\": \"idle\", \"start_s\": 2.0, \"end_s\": 1.0}}\n{end}"
        );
        assert!(validate_flight_jsonl(&bad_span).is_err(), "backwards span");
        let stray_worker = format!(
            "{meta}{{\"type\": \"span\", \"worker\": 3, \"kind\": \"idle\", \"start_s\": 0.0, \"end_s\": 1.0}}\n{end}"
        );
        assert!(
            validate_flight_jsonl(&stray_worker).is_err(),
            "worker outside pool"
        );
        // An event after the end line is torn framing.
        assert!(parse_flight(&format!("{meta}{end}{end}")).is_err());
    }

    #[test]
    fn recorder_collects_thread_safely_and_finishes() {
        let rec = FlightRecorder::new(2, 4);
        let handle = FlightHandle::attach(Arc::clone(&rec));
        assert!(handle.enabled());
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let h = handle.clone();
                s.spawn(move || {
                    let t0 = h.now();
                    let t1 = h.now();
                    h.span(w, SpanKind::Claim, Some("k"), t0, t1);
                    h.span(w, SpanKind::Simulate, Some("k"), t1, h.now());
                    h.cache("k", CacheOutcome::Miss, false);
                    h.queue(1, 1);
                });
            }
        });
        handle.cache("k2", CacheOutcome::Hit, false);
        handle.cache("k3", CacheOutcome::Hit, false);
        let log = handle.finish(2).expect("attached");
        assert_eq!(log.jobs, 2);
        assert_eq!(log.planned, 4);
        assert_eq!(log.runs, 2);
        assert_eq!(log.outcome_count(CacheOutcome::Hit), 2);
        assert_eq!(log.outcome_count(CacheOutcome::Miss), 2);
        reconcile(&log).expect("recorded journal reconciles");
        let text = log.to_jsonl();
        let summary = validate_flight_jsonl(&text).expect("valid journal");
        assert_eq!(summary.simulate_spans, 2);
        if cfg!(target_os = "linux") {
            assert!(log.peak_rss_bytes > 0, "statm sampling must work on linux");
            assert!(summary.rss_samples >= 2, "creation + finish samples");
        }
        // The disabled handle is inert and free.
        let off = FlightHandle::disabled();
        assert!(!off.enabled());
        off.span(0, SpanKind::Idle, None, 0.0, 1.0);
        off.cache("k", CacheOutcome::Hit, false);
        assert_eq!(off.now(), 0.0);
        assert!(off.finish(0).is_none());
    }
}
