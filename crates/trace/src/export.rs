//! Exporters for collected traces: a JSONL metrics file and a Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`), plus
//! the schema validators the round-trip tests and CI use.
//!
//! Both formats are hand-serialized — the workspace builds offline with
//! no serde — and both are re-parsed by [`crate::json`], so "what we
//! write" and "what we validate" can never drift apart silently.

use std::fmt::Write as _;

use crate::collect::{TraceCollector, Track};
use crate::hist::Histogram;
use crate::json::{parse, Json};
use crate::probe::Cycle;

// ----------------------------------------------------------------------
// JSONL metrics
// ----------------------------------------------------------------------

/// Serialize the collector's metrics as JSON Lines: one `meta` line,
/// one `histogram` line per message class and transaction type, and one
/// `epoch` line per epoch sample.
pub fn metrics_jsonl(c: &TraceCollector) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"version\":1,\"spans\":{},\"dropped_spans\":{},\"epochs\":{}}}",
        c.spans().len(),
        c.dropped_spans(),
        c.epochs().len()
    );
    for (subnet, kind, h) in c.net_histograms() {
        push_histogram_line(
            &mut out,
            "net",
            &format!("{}_{}", subnet.name(), kind.name()),
            h,
        );
    }
    for (name, h) in c.txn_histograms() {
        push_histogram_line(&mut out, "txn", name, h);
    }
    for e in c.epochs() {
        let _ = writeln!(
            out,
            "{{\"type\":\"epoch\",\"start\":{},\"end\":{},\"laser_idle_cycles\":{},\
             \"laser_unicast_cycles\":{},\"laser_broadcast_cycles\":{},\
             \"enet_link_traversals\":{},\"onet_flits_sent\":{},\"receive_net_flits\":{},\
             \"flits_injected\":{},\"stalled_cores\":{},\"outbox_depth\":{},\"energy_j\":{:e}}}",
            e.start,
            e.end,
            e.laser_idle_cycles,
            e.laser_unicast_cycles,
            e.laser_broadcast_cycles,
            e.enet_link_traversals,
            e.onet_flits_sent,
            e.receive_net_flits,
            e.flits_injected,
            e.stalled_cores,
            e.outbox_depth,
            e.energy.value()
        );
    }
    out
}

fn push_histogram_line(out: &mut String, scope: &str, class: &str, h: &Histogram) {
    let buckets: Vec<String> = h.nonzero_buckets().iter().map(u64::to_string).collect();
    let _ = writeln!(
        out,
        "{{\"type\":\"histogram\",\"scope\":\"{scope}\",\"class\":\"{class}\",\
         \"count\":{},\"sum\":{},\"max\":{},\"mean\":{:e},\
         \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.max(),
        h.mean(),
        h.p50(),
        h.p95(),
        h.p99(),
        buckets.join(",")
    );
}

/// What a validated metrics file contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Number of `histogram` lines with scope `net`.
    pub net_histograms: usize,
    /// Number of `histogram` lines with scope `txn`.
    pub txn_histograms: usize,
    /// Σ `count` over the net-scope histograms (reconciles with
    /// `NetStats` delivery counters).
    pub net_delivery_total: u64,
    /// Number of `epoch` lines.
    pub epochs: usize,
    /// Σ laser idle/unicast/broadcast cycles over every epoch line.
    pub laser_mode_cycles: [u64; 3],
}

/// Validate a JSONL metrics document against the emitted schema.
///
/// Checks, per line: it parses as a JSON object, its `type` is known,
/// every required key for that type is present with the right shape,
/// histogram bucket totals equal their `count`, and quantiles are
/// monotone. Returns a summary of what the file contained.
pub fn validate_metrics_jsonl(text: &str) -> Result<MetricsSummary, String> {
    let mut summary = MetricsSummary::default();
    let mut saw_meta = false;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing string `type`"))?;
        match ty {
            "meta" => {
                for key in ["version", "spans", "dropped_spans", "epochs"] {
                    require_u64(&v, key, n)?;
                }
                saw_meta = true;
            }
            "histogram" => {
                let scope = v
                    .get("scope")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: histogram missing `scope`"))?;
                v.get("class")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: histogram missing `class`"))?;
                let count = require_u64(&v, "count", n)?;
                require_u64(&v, "sum", n)?;
                let max = require_u64(&v, "max", n)?;
                v.get("mean")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {n}: histogram missing `mean`"))?;
                let p50 = require_u64(&v, "p50", n)?;
                let p95 = require_u64(&v, "p95", n)?;
                let p99 = require_u64(&v, "p99", n)?;
                if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
                    return Err(format!("line {n}: quantiles not monotone"));
                }
                let buckets = v
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {n}: histogram missing `buckets`"))?;
                let mut total = 0u64;
                for b in buckets {
                    total += b
                        .as_u64()
                        .ok_or_else(|| format!("line {n}: non-integer bucket"))?;
                }
                if total != count {
                    return Err(format!("line {n}: bucket total {total} != count {count}"));
                }
                match scope {
                    "net" => {
                        summary.net_histograms += 1;
                        summary.net_delivery_total += count;
                    }
                    "txn" => summary.txn_histograms += 1,
                    other => return Err(format!("line {n}: unknown scope `{other}`")),
                }
            }
            "epoch" => {
                let start = require_u64(&v, "start", n)?;
                let end = require_u64(&v, "end", n)?;
                if end < start {
                    return Err(format!("line {n}: epoch end {end} < start {start}"));
                }
                for (i, key) in [
                    "laser_idle_cycles",
                    "laser_unicast_cycles",
                    "laser_broadcast_cycles",
                ]
                .into_iter()
                .enumerate()
                {
                    summary.laser_mode_cycles[i] += require_u64(&v, key, n)?;
                }
                for key in [
                    "enet_link_traversals",
                    "onet_flits_sent",
                    "receive_net_flits",
                    "flits_injected",
                    "stalled_cores",
                    "outbox_depth",
                ] {
                    require_u64(&v, key, n)?;
                }
                let e = v
                    .get("energy_j")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {n}: epoch missing `energy_j`"))?;
                if !e.is_finite() || e < 0.0 {
                    return Err(format!("line {n}: non-physical epoch energy {e}"));
                }
                summary.epochs += 1;
            }
            other => return Err(format!("line {n}: unknown type `{other}`")),
        }
    }
    if !saw_meta {
        return Err("no `meta` line in metrics file".to_string());
    }
    Ok(summary)
}

fn require_u64(v: &Json, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer `{key}`"))
}

// ----------------------------------------------------------------------
// Chrome trace-event JSON
// ----------------------------------------------------------------------

/// Process id used for network timelines in the Chrome trace.
const PID_NETWORK: u32 = 1;
/// Process id used for per-core coherence timelines.
const PID_COHERENCE: u32 = 2;
/// Thread id for the optical-transmission timeline (subnets use 1..=4).
const TID_ONET_TX: u32 = 5;

/// Serialize retained spans in Chrome trace-event format. One complete
/// (`"ph":"X"`) event per span, with metadata events naming the
/// process/thread tracks; 1 simulated cycle is rendered as 1 ns
/// (`ts`/`dur` are in microseconds, as the format requires). Each
/// epoch sample additionally lands as Perfetto counter (`"ph":"C"`)
/// tracks under the network process — laser mode occupancy, flit
/// volumes, congestion pressure, and epoch energy — stepped at the
/// epoch's start cycle.
pub fn chrome_trace(c: &TraceCollector) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let meta = |out: &mut String, first: &mut bool, pid: u32, tid: Option<u32>, name: &str| {
        let sep = if *first { "" } else { "," };
        *first = false;
        match tid {
            None => {
                let _ = write!(
                    out,
                    "{sep}\n{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                );
            }
            Some(tid) => {
                let _ = write!(
                    out,
                    "{sep}\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
                );
            }
        }
    };
    meta(&mut out, &mut first, PID_NETWORK, None, "network");
    meta(&mut out, &mut first, PID_COHERENCE, None, "coherence");
    for s in crate::probe::Subnet::ALL {
        let tid = tid_for_subnet(s);
        meta(&mut out, &mut first, PID_NETWORK, Some(tid), s.name());
    }
    meta(
        &mut out,
        &mut first,
        PID_NETWORK,
        Some(TID_ONET_TX),
        "onet-tx",
    );

    for e in c.epochs() {
        let ts = cycles_to_us(e.start);
        let counter = |out: &mut String, first: &mut bool, name: &str, args: String| {
            let sep = if *first { "" } else { "," };
            *first = false;
            let _ = write!(
                out,
                "{sep}\n{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"C\",\
                 \"pid\":{PID_NETWORK},\"ts\":{ts:.3},\"args\":{{{args}}}}}"
            );
        };
        counter(
            &mut out,
            &mut first,
            "laser-mode-cycles",
            format!(
                "\"idle\":{},\"unicast\":{},\"broadcast\":{}",
                e.laser_idle_cycles, e.laser_unicast_cycles, e.laser_broadcast_cycles
            ),
        );
        counter(
            &mut out,
            &mut first,
            "net-flits",
            format!(
                "\"enet\":{},\"onet\":{},\"rnet\":{},\"injected\":{}",
                e.enet_link_traversals, e.onet_flits_sent, e.receive_net_flits, e.flits_injected
            ),
        );
        counter(
            &mut out,
            &mut first,
            "pressure",
            format!(
                "\"stalled_cores\":{},\"outbox_depth\":{}",
                e.stalled_cores, e.outbox_depth
            ),
        );
        counter(
            &mut out,
            &mut first,
            "energy_j",
            format!("\"value\":{:e}", e.energy.value()),
        );
    }

    for span in c.spans() {
        let (pid, tid) = match span.track {
            Track::Subnet(s) => (PID_NETWORK, tid_for_subnet(s)),
            Track::OnetTx => (PID_NETWORK, TID_ONET_TX),
            Track::Core(core) => (PID_COHERENCE, core + 1),
        };
        let sep = if first { "" } else { "," };
        first = false;
        let _ = write!(
            out,
            "{sep}\n{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":{pid},\
             \"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3}}}",
            span.name,
            cycles_to_us(span.start),
            cycles_to_us(span.end.saturating_sub(span.start).max(1))
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn tid_for_subnet(s: crate::probe::Subnet) -> u32 {
    // Subnet::index() is dense in 0..4; tids start at 1.
    u32::try_from(s.index()).unwrap_or(0) + 1
}

fn cycles_to_us(cycles: Cycle) -> f64 {
    cycles as f64 * 0.001
}

/// Validate a Chrome trace-event document: top-level object with a
/// `traceEvents` array and a `displayTimeUnit` string, every event an
/// object with a `ph`, every complete (`X`) event carrying
/// name/cat/pid/tid and non-negative `ts`/`dur`, every metadata
/// (`M`) event carrying a `name` plus an `args.name` string, and every
/// counter (`C`) event naming a known track whose `args` carry that
/// track's full key set with finite non-negative values. Returns
/// the number of `X` events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    v.get("displayTimeUnit")
        .and_then(Json::as_str)
        .ok_or("missing `displayTimeUnit` string")?;
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        match ph {
            "X" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: X event missing `name`"))?;
                ev.get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: X event missing `cat`"))?;
                for key in ["pid", "tid"] {
                    ev.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("event {i}: X event missing `{key}`"))?;
                }
                for key in ["ts", "dur"] {
                    let n = ev
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: X event missing `{key}`"))?;
                    if !n.is_finite() || n < 0.0 {
                        return Err(format!("event {i}: bad `{key}` {n}"));
                    }
                }
                complete += 1;
            }
            "M" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: M event missing `name`"))?;
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: M event missing `args.name`"))?;
            }
            "C" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: C event missing `name`"))?;
                ev.get("pid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: C event missing `pid`"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: C event missing `ts`"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i}: bad counter `ts` {ts}"));
                }
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i}: C event missing `args`"))?;
                let keys: &[&str] = match name {
                    "laser-mode-cycles" => &["idle", "unicast", "broadcast"],
                    "net-flits" => &["enet", "onet", "rnet", "injected"],
                    "pressure" => &["stalled_cores", "outbox_depth"],
                    "energy_j" => &["value"],
                    other => {
                        return Err(format!("event {i}: unknown counter track `{other}`"));
                    }
                };
                for key in keys {
                    let n = args
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: counter missing `{key}`"))?;
                    if !n.is_finite() || n < 0.0 {
                        return Err(format!("event {i}: bad counter value `{key}` {n}"));
                    }
                }
            }
            other => return Err(format!("event {i}: unexpected phase `{other}`")),
        }
    }
    Ok(complete)
}

/// Convenience for printing a one-line percentile summary of a span's
/// worth of histograms (used by the CLI and the example).
pub fn percentile_row(class: &str, h: &Histogram) -> String {
    format!(
        "{class:<22} n={:<8} mean={:<8.1} p50={:<6} p95={:<6} p99={:<6} max={}",
        h.count(),
        h.mean(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{
        EpochSample, NetDeliver, OnetTx, Probe, Subnet, TrafficKind, TxnEvent, TxnPhase,
    };
    use atac_phys::units::Joules;

    fn populated_collector() -> TraceCollector {
        let mut c = TraceCollector::new();
        for i in 0..20 {
            c.net_deliver(&NetDeliver {
                subnet: if i % 2 == 0 {
                    Subnet::ENet
                } else {
                    Subnet::StarNet
                },
                kind: if i % 5 == 0 {
                    TrafficKind::Broadcast
                } else {
                    TrafficKind::Unicast
                },
                src: i,
                dst: i + 1,
                inject: u64::from(i) * 10,
                at: u64::from(i) * 10 + 3 + u64::from(i % 7),
            });
        }
        c.onet_tx(&OnetTx {
            hub: 3,
            kind: TrafficKind::Broadcast,
            start: 40,
            end: 55,
            flits: 10,
        });
        c.txn(&TxnEvent {
            core: 1,
            phase: TxnPhase::Begin { write: false },
            at: 5,
        });
        c.txn(&TxnEvent {
            core: 1,
            phase: TxnPhase::DirSeen,
            at: 15,
        });
        c.txn(&TxnEvent {
            core: 1,
            phase: TxnPhase::DataReturn,
            at: 40,
        });
        c.txn(&TxnEvent {
            core: 1,
            phase: TxnPhase::End,
            at: 42,
        });
        c.epoch(&EpochSample {
            start: 0,
            end: 1000,
            laser_idle_cycles: 900,
            laser_unicast_cycles: 60,
            laser_broadcast_cycles: 40,
            enet_link_traversals: 500,
            onet_flits_sent: 10,
            receive_net_flits: 12,
            flits_injected: 44,
            stalled_cores: 7,
            outbox_depth: 2,
            energy: Joules(1.25e-6),
        });
        c
    }

    #[test]
    fn metrics_jsonl_roundtrips_through_validator() {
        let c = populated_collector();
        let text = metrics_jsonl(&c);
        let summary = validate_metrics_jsonl(&text).expect("schema-valid metrics");
        assert_eq!(summary.net_histograms, 8);
        assert_eq!(summary.txn_histograms, 4);
        assert_eq!(summary.net_delivery_total, c.total_net_deliveries());
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.laser_mode_cycles, [900, 60, 40]);
    }

    #[test]
    fn chrome_trace_roundtrips_through_validator() {
        let c = populated_collector();
        let text = chrome_trace(&c);
        let complete = validate_chrome_trace(&text).expect("schema-valid trace");
        // 20 deliveries + 1 optical burst + 1 transaction span.
        assert_eq!(complete, 22);
        // One epoch sample → four Perfetto counter tracks.
        assert_eq!(text.matches("\"ph\":\"C\"").count(), 4);
        for track in ["laser-mode-cycles", "net-flits", "pressure", "energy_j"] {
            assert!(text.contains(track), "missing counter track `{track}`");
        }
    }

    #[test]
    fn validators_reject_corruption() {
        let c = populated_collector();
        let metrics = metrics_jsonl(&c);
        // Break a histogram's bucket/count agreement.
        let broken = metrics.replacen("\"count\":", "\"count\":9", 1);
        assert!(validate_metrics_jsonl(&broken).is_err());
        // Unknown record type.
        assert!(validate_metrics_jsonl("{\"type\":\"meta\",\"version\":1,\"spans\":0,\"dropped_spans\":0,\"epochs\":0}\n{\"type\":\"mystery\"}\n").is_err());
        // A metrics file with no meta line.
        assert!(validate_metrics_jsonl("").is_err());

        let trace = chrome_trace(&c);
        let broken = trace.replacen("\"ph\":\"X\"", "\"ph\":\"Q\"", 1);
        assert!(validate_chrome_trace(&broken).is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // A counter track the validator doesn't know is rejected.
        let broken = trace.replacen("net-flits", "mystery-track", 1);
        assert!(validate_chrome_trace(&broken).is_err());
        // A counter stripped of one of its required args is rejected.
        let broken = trace.replacen("\"unicast\":", "\"unicats\":", 1);
        assert!(validate_chrome_trace(&broken).is_err());
    }

    #[test]
    fn empty_collector_still_exports_valid_documents() {
        let c = TraceCollector::new();
        let summary = validate_metrics_jsonl(&metrics_jsonl(&c)).expect("valid");
        assert_eq!(summary.net_delivery_total, 0);
        assert_eq!(summary.epochs, 0);
        assert_eq!(validate_chrome_trace(&chrome_trace(&c)).expect("valid"), 0);
    }
}
