//! Validate emitted trace files against the expected schema.
//!
//! Usage: `trace-schema-check <metrics.jsonl> [trace.json ...]`
//!
//! Files ending in `.jsonl` are checked as JSONL metrics documents;
//! files ending in `.json` as Chrome trace-event documents. Exits
//! non-zero (with a diagnostic on stderr) on the first violation. CI
//! runs this against the artifacts of a small traced simulation.

use std::process::ExitCode;

use atac_trace::{validate_chrome_trace, validate_metrics_jsonl};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-schema-check <metrics.jsonl> [trace.json ...]");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace-schema-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = if path.ends_with(".jsonl") {
            validate_metrics_jsonl(&text).map(|s| {
                format!(
                    "{} net histograms ({} deliveries), {} txn histograms, {} epochs",
                    s.net_histograms, s.net_delivery_total, s.txn_histograms, s.epochs
                )
            })
        } else if path.ends_with(".json") {
            validate_chrome_trace(&text).map(|n| format!("{n} complete events"))
        } else {
            Err("unknown extension (expected .jsonl or .json)".to_string())
        };
        match outcome {
            Ok(desc) => println!("trace-schema-check: {path}: OK ({desc})"),
            Err(e) => {
                eprintln!("trace-schema-check: {path}: schema violation: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
