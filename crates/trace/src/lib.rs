//! # atac-trace — cross-layer observability for the ATAC+ simulator
//!
//! The paper's evaluation is cross-layer: simulator event counts flow
//! into device-level energy models, and several of its claims are
//! really claims about *distributions and time series* — Table V's
//! laser idle/unicast/broadcast occupancy, Fig. 3's latency-vs-load
//! behavior near saturation. This crate provides the instrumentation
//! spine that makes those observable without perturbing the run:
//!
//! * [`probe`] — the event vocabulary ([`NetDeliver`], [`OnetTx`],
//!   [`TxnEvent`], [`EpochSample`]), the [`Probe`] trait with no-op
//!   defaults, [`NullProbe`], and the [`ProbeHandle`] every
//!   instrumented layer holds. Disabled handles cost one branch per
//!   probe point and probes cannot feed back into simulator state, so
//!   untraced runs are bit-identical to the uninstrumented simulator.
//! * [`hist`] — [`Histogram`], a mergeable power-of-two-bucketed
//!   latency histogram with exact count/sum/max and bucket-resolution
//!   p50/p95/p99.
//! * [`collect`] — [`TraceCollector`], the standard probe: per-class
//!   and per-transaction-type histograms, bounded Chrome-trace spans,
//!   and the epoch time series.
//! * [`export`] — JSONL metrics and Chrome trace-event serializers plus
//!   the schema validators used by tests, CI, and the
//!   `trace-schema-check` binary.
//! * [`json`] — the dependency-free JSON reader backing the validators.
//! * [`profile`] — [`HostProfiler`], the lap-based *host* wall-clock
//!   phase profiler the engine and memory system thread through their
//!   loops, so sweeps can report where the simulator's own seconds go —
//!   including per-network-sub-phase attribution ([`NetSubPhase`]) under
//!   the `ATAC_NETPROF` knob.
//! * [`netobs`] — [`NetObserver`]/[`NetObsHandle`], the cycle-domain
//!   network observability layer: per-router/link counters, hub
//!   occupancy, and skip-ahead efficacy metrics collected into the
//!   mergeable [`NetProfile`].
//! * [`flight`] — the sweep flight recorder: the thread-safe
//!   [`FlightRecorder`] the parallel executor fills with worker
//!   lifecycle spans, cache outcomes, queue-depth and RSS samples, and
//!   the emitter/validator pair for the `atac-flight-v1` JSONL journal.
//!
//! This crate sits *below* `atac-net` in the dependency graph (it only
//! depends on `atac-phys` for unit newtypes), so every simulator layer
//! can hold a [`ProbeHandle`] without cycles.

pub mod collect;
pub mod export;
pub mod flight;
pub mod hist;
pub mod json;
pub mod netobs;
pub mod probe;
pub mod profile;

pub use collect::{Span, TraceCollector, Track, DEFAULT_SPAN_CAPACITY};
pub use export::{
    chrome_trace, metrics_jsonl, percentile_row, validate_chrome_trace, validate_metrics_jsonl,
    MetricsSummary,
};
pub use flight::{
    current_rss_bytes, parse_flight, reconcile, validate_flight_jsonl, CacheOutcome, FlightEvent,
    FlightHandle, FlightLog, FlightRecorder, FlightSummary, SpanKind, FLIGHT_SCHEMA,
};
pub use hist::{Histogram, BUCKETS};
pub use netobs::{
    occ_bucket, run_bucket, AdvanceCause, NetObsHandle, NetObserver, NetProfile, RouterObs,
    LINKS_PER_ROUTER, OCC_BUCKETS, OCC_BUCKET_LABELS, RUN_BUCKETS, RUN_BUCKET_LABELS,
};
pub use probe::{
    Cycle, EpochSample, NetDeliver, NullProbe, OnetTx, Probe, ProbeHandle, Subnet, TrafficKind,
    TxnEvent, TxnPhase,
};
pub use profile::{HostPhase, HostProfile, HostProfiler, NetSubPhase};
