//! The instrumentation API: event vocabulary, the [`Probe`] trait, and
//! the [`ProbeHandle`] the simulator layers actually hold.
//!
//! ## Overhead guarantee
//!
//! Every instrumented layer stores a [`ProbeHandle`], which is an
//! `Option` around a shared probe object. The default handle is `None`
//! (equivalent to wiring up [`NullProbe`]), so each probe point costs
//! exactly one branch on an `Option` discriminant and the event structs
//! are never even constructed — the compiler sees the `None` arm and
//! dead-codes the argument expressions it feeds. Probes are
//! *observers only*: nothing they compute flows back into simulator
//! state, so an instrumented run is bit-identical to an uninstrumented
//! one by construction, not by testing alone.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use atac_phys::units::Joules;

/// Simulation time in clock cycles (mirrors `atac_net::Cycle`; declared
/// here so the trace crate sits below the network crate).
pub type Cycle = u64;

/// Which physical sub-network carried a delivery (paper §III-A): the
/// electrical mesh, the optical SWMR waveguides, or one of the two
/// cluster receive-network flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subnet {
    /// Electrical mesh (ENet / pure-electrical EMesh).
    ENet,
    /// Optical SWMR data waveguides.
    ONet,
    /// Single-hop star receive network (ATAC+).
    StarNet,
    /// Pipelined-tree broadcast receive network (ATAC baseline).
    BNet,
}

impl Subnet {
    /// Every subnet, in display order.
    pub const ALL: [Subnet; 4] = [Subnet::ENet, Subnet::ONet, Subnet::StarNet, Subnet::BNet];

    /// Stable lower-case name used in exported metrics.
    pub fn name(self) -> &'static str {
        match self {
            Subnet::ENet => "enet",
            Subnet::ONet => "onet",
            Subnet::StarNet => "starnet",
            Subnet::BNet => "bnet",
        }
    }

    /// Dense index in `0..4` for table lookups.
    pub fn index(self) -> usize {
        match self {
            Subnet::ENet => 0,
            Subnet::ONet => 1,
            Subnet::StarNet => 2,
            Subnet::BNet => 3,
        }
    }
}

/// Whether a message was a unicast or a broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficKind {
    /// One destination core.
    Unicast,
    /// Every other core on the chip.
    Broadcast,
}

impl TrafficKind {
    /// Both kinds, in display order.
    pub const ALL: [TrafficKind; 2] = [TrafficKind::Unicast, TrafficKind::Broadcast];

    /// Stable lower-case name used in exported metrics.
    pub fn name(self) -> &'static str {
        match self {
            TrafficKind::Unicast => "unicast",
            TrafficKind::Broadcast => "broadcast",
        }
    }

    /// Dense index in `0..2` for table lookups.
    pub fn index(self) -> usize {
        match self {
            TrafficKind::Unicast => 0,
            TrafficKind::Broadcast => 1,
        }
    }
}

/// One message delivery, observed at the receiver when the tail flit
/// lands. For broadcasts there is one event per receiving core, which
/// matches how `NetStats::broadcast_received` counts.
#[derive(Debug, Clone, Copy)]
pub struct NetDeliver {
    /// Sub-network that performed the final delivery.
    pub subnet: Subnet,
    /// Unicast or broadcast (by original message destination).
    pub kind: TrafficKind,
    /// Sending core index.
    pub src: u32,
    /// Receiving core index.
    pub dst: u32,
    /// Cycle the message was accepted for injection.
    pub inject: Cycle,
    /// Cycle the tail flit reached the receiver.
    pub at: Cycle,
}

impl NetDeliver {
    /// End-to-end latency in cycles (inject → tail arrival).
    pub fn latency_cycles(&self) -> Cycle {
        self.at.saturating_sub(self.inject)
    }
}

/// One optical transmission: the interval a hub's modulators drive the
/// SWMR waveguide (grounds Table V's mode-occupancy accounting).
#[derive(Debug, Clone, Copy)]
pub struct OnetTx {
    /// Sending hub (cluster) index.
    pub hub: u32,
    /// Laser mode for the burst: unicast or broadcast.
    pub kind: TrafficKind,
    /// First cycle data occupies the link.
    pub start: Cycle,
    /// Last cycle of the burst including waveguide propagation.
    pub end: Cycle,
    /// Flits modulated.
    pub flits: u64,
}

/// Lifecycle phase of one coherence transaction. With in-order cores
/// and one outstanding miss per core, the issuing core index is the
/// transaction id: phases for the same core between a `Begin` and its
/// `End` belong to one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPhase {
    /// Core missed in its private cache hierarchy and issued a request.
    Begin {
        /// True for write (exclusive/upgrade) requests.
        write: bool,
    },
    /// The home directory received the request.
    DirSeen,
    /// The data (or upgrade) reply arrived back at the requester's tile.
    DataReturn,
    /// The requesting core resumed execution.
    End,
}

/// One coherence-transaction lifecycle event.
#[derive(Debug, Clone, Copy)]
pub struct TxnEvent {
    /// Requesting core index (doubles as the transaction key).
    pub core: u32,
    /// Which lifecycle phase this event marks.
    pub phase: TxnPhase,
    /// Cycle the phase was observed.
    pub at: Cycle,
}

/// One epoch sample: counter deltas and instantaneous state captured
/// every N cycles by the engine's epoch sampler. A skip-ahead jump can
/// cross several nominal epoch boundaries at once; the sampler then
/// emits a single coalesced sample, which is why `start`/`end` are
/// explicit rather than implied by an index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// First cycle covered by this sample.
    pub start: Cycle,
    /// Last cycle covered (exclusive).
    pub end: Cycle,
    /// Laser link-cycles spent idle over the epoch (Table V).
    pub laser_idle_cycles: u64,
    /// Laser link-cycles in unicast mode over the epoch.
    pub laser_unicast_cycles: u64,
    /// Laser link-cycles in broadcast mode over the epoch.
    pub laser_broadcast_cycles: u64,
    /// Electrical mesh link traversals this epoch (link utilization).
    pub enet_link_traversals: u64,
    /// Optical flits modulated this epoch.
    pub onet_flits_sent: u64,
    /// Receive-network flits (BNet/StarNet, unicast + broadcast).
    pub receive_net_flits: u64,
    /// Flits accepted for injection this epoch (offered load).
    pub flits_injected: u64,
    /// Cores blocked on an outstanding miss at the sample instant.
    pub stalled_cores: u64,
    /// Coherence-layer outbox backlog (queued messages) at the sample
    /// instant.
    pub outbox_depth: u64,
    /// Energy accrued over this epoch (dynamic + static, all
    /// components).
    pub energy: Joules,
}

impl EpochSample {
    /// Cycles covered by this sample.
    pub fn span_cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Receiver of simulator instrumentation events.
///
/// Every method has a no-op default, so a probe implements only what it
/// cares about. Probes must not feed anything back into the simulation
/// — they observe copies of state handed to them.
pub trait Probe: fmt::Debug {
    /// A message delivery completed (tail flit at the receiver).
    fn net_deliver(&mut self, ev: &NetDeliver) {
        let _ = ev;
    }

    /// A hub transmitted a burst on the optical waveguide.
    fn onet_tx(&mut self, ev: &OnetTx) {
        let _ = ev;
    }

    /// A coherence transaction advanced one lifecycle phase.
    fn txn(&mut self, ev: &TxnEvent) {
        let _ = ev;
    }

    /// The epoch sampler closed an epoch.
    fn epoch(&mut self, sample: &EpochSample) {
        let _ = sample;
    }
}

/// The probe that does nothing; semantically what a default
/// [`ProbeHandle`] wires up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Shared, cloneable handle the instrumented layers hold.
///
/// `Default` is the disabled state: every forwarding method is a single
/// `Option` branch and event construction at the call site is dead code
/// (see the module docs for the overhead argument). All probe dispatch
/// goes through these inline forwarders — hot-path code never borrows
/// the probe object directly (`atac-audit` rule `probe-api`).
///
/// ## Thread confinement
///
/// The handle is `Rc`-based and therefore deliberately `!Send`: a probe
/// and everything it collects belong to the worker thread that created
/// them, so parallel sweep workers can never interleave events into one
/// collector. This is a compile-time guarantee:
///
/// ```compile_fail,E0277
/// use atac_trace::ProbeHandle;
/// fn requires_send<T: Send>(_: T) {}
/// requires_send(ProbeHandle::disabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProbeHandle(Option<Rc<RefCell<dyn Probe>>>);

impl ProbeHandle {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        ProbeHandle(None)
    }

    /// A handle forwarding to `probe`; clone it into each layer.
    pub fn attach<P: Probe + 'static>(probe: Rc<RefCell<P>>) -> Self {
        ProbeHandle(Some(probe))
    }

    /// Whether a probe is attached. Layers may use this to skip
    /// *sampling work* (not state changes) when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forward a delivery event.
    #[inline]
    pub fn net_deliver(&self, ev: &NetDeliver) {
        if let Some(p) = &self.0 {
            p.borrow_mut().net_deliver(ev);
        }
    }

    /// Forward an optical-transmission event.
    #[inline]
    pub fn onet_tx(&self, ev: &OnetTx) {
        if let Some(p) = &self.0 {
            p.borrow_mut().onet_tx(ev);
        }
    }

    /// Forward a transaction lifecycle event.
    #[inline]
    pub fn txn(&self, ev: &TxnEvent) {
        if let Some(p) = &self.0 {
            p.borrow_mut().txn(ev);
        }
    }

    /// Forward an epoch sample.
    #[inline]
    pub fn epoch(&self, sample: &EpochSample) {
        if let Some(p) = &self.0 {
            p.borrow_mut().epoch(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct CountingProbe {
        deliveries: u32,
        epochs: u32,
    }

    impl Probe for CountingProbe {
        fn net_deliver(&mut self, _ev: &NetDeliver) {
            self.deliveries += 1;
        }
        fn epoch(&mut self, _sample: &EpochSample) {
            self.epochs += 1;
        }
    }

    fn delivery() -> NetDeliver {
        NetDeliver {
            subnet: Subnet::ONet,
            kind: TrafficKind::Unicast,
            src: 3,
            dst: 17,
            inject: 10,
            at: 25,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ProbeHandle::default();
        assert!(!h.is_enabled());
        h.net_deliver(&delivery()); // must not panic
        h.txn(&TxnEvent {
            core: 0,
            phase: TxnPhase::End,
            at: 1,
        });
    }

    #[test]
    fn attached_handle_forwards_and_shares() {
        let probe = Rc::new(RefCell::new(CountingProbe::default()));
        let h = ProbeHandle::attach(Rc::clone(&probe));
        let h2 = h.clone();
        assert!(h.is_enabled());
        h.net_deliver(&delivery());
        h2.net_deliver(&delivery());
        assert_eq!(probe.borrow().deliveries, 2);
        assert_eq!(probe.borrow().epochs, 0);
    }

    #[test]
    fn latency_and_span_helpers() {
        assert_eq!(delivery().latency_cycles(), 15);
        let s = EpochSample {
            start: 100,
            end: 350,
            laser_idle_cycles: 0,
            laser_unicast_cycles: 0,
            laser_broadcast_cycles: 0,
            enet_link_traversals: 0,
            onet_flits_sent: 0,
            receive_net_flits: 0,
            flits_injected: 0,
            stalled_cores: 0,
            outbox_depth: 0,
            energy: Joules::ZERO,
        };
        assert_eq!(s.span_cycles(), 250);
    }

    #[test]
    fn names_and_indices_are_dense_and_stable() {
        for (i, s) in Subnet::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, k) in TrafficKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(Subnet::StarNet.name(), "starnet");
        assert_eq!(TrafficKind::Broadcast.name(), "broadcast");
    }
}
