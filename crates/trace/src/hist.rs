//! Log-bucketed histogram for cycle-valued latency distributions.
//!
//! The paper's latency evidence (Fig. 3's latency-vs-load curves, the
//! §IV receive-network delay discussion) is about *distributions*, not
//! means: saturation shows up in the tail long before it moves the
//! average. This histogram keeps power-of-two buckets — constant space,
//! O(1) insert, lossless merge — plus exact `count`/`sum`/`max`, so the
//! mean is exact and quantiles are bucket-resolution approximations
//! with a known one-octave error bound.

/// Number of buckets. Bucket 0 holds the value 0; bucket `i` in
/// `1..=64` holds values in `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 65;

/// A mergeable power-of-two-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`
    /// (the position of the highest set bit, 1-based).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `0.0..=1.0`: the inclusive upper bound
    /// of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped to the exact observed maximum. Empty
    /// histograms report 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= target {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one. Merging is associative and
    /// commutative: bucket-wise addition plus exact max/sum/count.
    // audit: order-stable — u64 bucket/count/sum/max arithmetic is associative
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The bucket array trimmed after the last non-zero entry (compact,
    /// stable serialization form).
    pub fn nonzero_buckets(&self) -> &[u64] {
        let len = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        &self.buckets[..len]
    }

    /// Rebuild a histogram from serialized parts. Returns `None` if the
    /// bucket array is longer than [`BUCKETS`] or its total disagrees
    /// with `count` (a corrupt or truncated record).
    pub fn from_raw(count: u64, sum: u64, max: u64, buckets: &[u64]) -> Option<Histogram> {
        if buckets.len() > BUCKETS {
            return None;
        }
        let mut b = [0u64; BUCKETS];
        b[..buckets.len()].copy_from_slice(buckets);
        let total: u64 = b.iter().sum();
        (total == count).then_some(Histogram {
            buckets: b,
            count,
            sum,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every power of two starts a fresh bucket and its predecessor
        // closes the previous one.
        for shift in 1..64 {
            let v = 1u64 << shift;
            assert_eq!(Histogram::bucket_index(v), shift + 1);
            assert_eq!(Histogram::bucket_index(v - 1), shift);
            assert_eq!(Histogram::bucket_bound(shift), v - 1);
        }
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn exact_aggregates_and_mean() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1111.0 / 6.0).abs() < 1e-12);
        assert!(!h.is_empty());
        assert!(Histogram::new().is_empty());
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        // Deterministic skewed stream: mostly small, a long tail.
        let mut x = 7u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(x % 97 + u64::from(x.is_multiple_of(11)) * (x % 4096));
        }
        let qs: Vec<u64> = [0.01, 0.25, 0.50, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantile_of_single_value_is_exact() {
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(37);
        }
        // The bucket bound (63) is clamped to the observed max.
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p99(), 37);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 2, 3, 900]);
        let b = mk(&[0, 0, 65_000]);
        let c = mk(&[7, 7, 7, 7, 12_345_678]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);

        assert_eq!(ab_c.count(), 12);
        assert_eq!(ab_c.max(), 12_345_678);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        for v in [0, 1, 64, 4095, 4096] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before, "empty right-operand must change nothing");

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty must copy exactly");

        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert_eq!(both, Histogram::new());
        assert!(both.is_empty());
    }

    #[test]
    fn quantiles_on_zero_and_one_samples() {
        // Zero samples: every quantile (and the extremes) reports 0
        // rather than panicking or reading a bucket bound.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0);
        }
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.max(), 0);

        // One sample: every quantile is that sample, exactly — the
        // max clamp must defeat the one-octave bucket bound.
        let mut one = Histogram::new();
        one.record(1000); // bucket 10, bound 1023
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 1000);
        }

        // One zero-valued sample stays in bucket 0.
        let mut zero = Histogram::new();
        zero.record(0);
        assert_eq!(zero.count(), 1);
        assert_eq!(zero.quantile(1.0), 0);
    }

    #[test]
    fn bucket_boundary_values_survive_raw_roundtrip() {
        // Samples pinned to both edges of every octave up to 2^63 — the
        // exact sum of all of them still fits in the `sum` field.
        let mut h = Histogram::new();
        h.record(0);
        for shift in 1..63 {
            h.record(1u64 << shift); // opens bucket shift+1
            h.record((1u64 << shift) - 1); // closes bucket shift
        }
        let back = Histogram::from_raw(h.count(), h.sum(), h.max(), h.nonzero_buckets())
            .expect("boundary-valued parts are self-consistent");
        assert_eq!(back, h);

        // The extremes get their own histogram: 0 + u64::MAX is the
        // largest sum `record` can represent exactly.
        let mut top = Histogram::new();
        top.record(0);
        top.record(u64::MAX);
        // u64::MAX lives in the last bucket, so the compact form is the
        // full array — no boundary bucket may be dropped by trimming.
        assert_eq!(top.nonzero_buckets().len(), BUCKETS);
        let back = Histogram::from_raw(top.count(), top.sum(), top.max(), top.nonzero_buckets())
            .expect("extreme-valued parts are self-consistent");
        assert_eq!(back, top);
        assert_eq!(back.max(), u64::MAX);
        assert_eq!(back.quantile(1.0), u64::MAX);
    }

    #[test]
    fn raw_roundtrip_via_nonzero_buckets() {
        let mut h = Histogram::new();
        for v in [0, 3, 3, 250, 251] {
            h.record(v);
        }
        let back = Histogram::from_raw(h.count(), h.sum(), h.max(), h.nonzero_buckets())
            .expect("self-consistent parts");
        assert_eq!(back, h);
        // Corrupt count is rejected.
        assert!(
            Histogram::from_raw(h.count() + 1, h.sum(), h.max(), h.nonzero_buckets()).is_none()
        );
        // Oversized bucket arrays are rejected.
        assert!(Histogram::from_raw(0, 0, 0, &[0; BUCKETS + 1]).is_none());
        // Empty histogram round-trips through an empty slice.
        assert_eq!(
            Histogram::from_raw(0, 0, 0, &[]).expect("empty"),
            Histogram::new()
        );
    }
}
