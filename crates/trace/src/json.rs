//! A minimal recursive-descent JSON reader.
//!
//! The workspace builds offline with zero external dependencies, so the
//! schema validators (and the round-trip tests) parse the exporters'
//! output with this ~150-line reader instead of `serde_json`. It
//! accepts standard JSON; the only liberty is that numbers are read as
//! `f64`, which is exact for the integer counters we emit below 2^53.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) | Json::Arr(_) => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null | Json::Bool(_) | Json::Str(_) | Json::Arr(_) | Json::Obj(_) => None,
        }
    }

    /// Non-negative integer value, if this is a whole number that fits.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0).then_some(n as u64)
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Arr(_) | Json::Obj(_) => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) | Json::Obj(_) => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

/// Parse one complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos = end;
                            // Surrogate pairs are not needed for our own
                            // ASCII output; map them to the replacement
                            // character rather than rejecting.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("control character in string")),
                _ if b < 0x80 => out.push(char::from(b)),
                _ => {
                    // Multi-byte UTF-8: decode exactly one sequence
                    // (bounded slice — validating the whole tail here
                    // would make parsing quadratic).
                    let start = self.pos - 1;
                    let len = match b {
                        0xF0..=0xF7 => 4,
                        0xE0..=0xEF => 3,
                        _ => 2,
                    };
                    let seq = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(seq).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("valid json");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&Json::Null));
    }

    #[test]
    fn u64_extraction_guards_fractions_and_sign() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "{'a': 1}", "tru"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers_and_unicode() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(Vec::new()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert_eq!(parse(r#""Aµ""#).unwrap().as_str(), Some("Aµ"));
    }
}
