//! The standard [`Probe`] implementation: histograms per message class
//! and transaction type, Chrome-trace spans, and the epoch time series.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::hist::Histogram;
use crate::probe::{
    Cycle, EpochSample, NetDeliver, OnetTx, Probe, Subnet, TrafficKind, TxnEvent, TxnPhase,
};

/// Default cap on retained spans; beyond it spans are counted as
/// dropped rather than stored, so long runs cannot exhaust memory.
pub const DEFAULT_SPAN_CAPACITY: usize = 200_000;

/// Which timeline a span belongs to in the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Delivery span on one sub-network's timeline.
    Subnet(Subnet),
    /// Optical transmission burst (hub drives the waveguide).
    OnetTx,
    /// Coherence transaction on the issuing core's timeline.
    Core(u32),
}

/// One finished interval for the Chrome-trace export.
#[derive(Debug, Clone)]
pub struct Span {
    /// Timeline this span renders on.
    pub track: Track,
    /// Human-readable label.
    pub name: String,
    /// First cycle of the interval.
    pub start: Cycle,
    /// Last cycle of the interval (inclusive end of activity).
    pub end: Cycle,
}

/// A transaction in flight: `Begin` seen, `End` pending.
#[derive(Debug, Clone, Copy)]
struct OpenTxn {
    begin: Cycle,
    write: bool,
    dir_seen: Option<Cycle>,
    data_return: Option<Cycle>,
}

/// Collects every probe event into mergeable histograms, bounded span
/// storage, and the epoch time series. Attach with
/// [`crate::ProbeHandle::attach`], run the simulation, then read the
/// accessors (or feed the collector to the exporters).
#[derive(Debug)]
pub struct TraceCollector {
    /// Delivery-latency histograms indexed `[subnet][kind]`.
    net_hist: [[Histogram; 2]; 4],
    /// Full miss latency (Begin → End) for read transactions.
    txn_read: Histogram,
    /// Full miss latency (Begin → End) for write transactions.
    txn_write: Histogram,
    /// Request leg: Begin → directory arrival.
    txn_request_leg: Histogram,
    /// Reply leg: directory arrival → data return at the requester.
    txn_reply_leg: Histogram,
    epochs: Vec<EpochSample>,
    spans: Vec<Span>,
    /// 0 disables span collection entirely (metrics-only mode).
    max_spans: usize,
    dropped_spans: u64,
    open_txns: BTreeMap<u32, OpenTxn>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// Collector with the default span capacity.
    pub fn new() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// Collector that keeps histograms and epochs but no spans (the
    /// cheap mode the bench run-cache uses).
    pub fn metrics_only() -> Self {
        Self::with_span_capacity(0)
    }

    /// A metrics-only collector pre-attached to a fresh [`ProbeHandle`],
    /// for per-worker instrumentation in a parallel sweep: the returned
    /// pair is `Rc`-based and deliberately `!Send`, so each worker
    /// thread must construct its own inside the thread — two workers can
    /// never interleave events into one collector by construction.
    pub fn metrics_worker() -> (Rc<RefCell<TraceCollector>>, crate::ProbeHandle) {
        let collector = Rc::new(RefCell::new(Self::metrics_only()));
        let probe = crate::ProbeHandle::attach(Rc::clone(&collector));
        (collector, probe)
    }

    /// Collector retaining at most `max_spans` spans.
    pub fn with_span_capacity(max_spans: usize) -> Self {
        TraceCollector {
            net_hist: Default::default(),
            txn_read: Histogram::new(),
            txn_write: Histogram::new(),
            txn_request_leg: Histogram::new(),
            txn_reply_leg: Histogram::new(),
            epochs: Vec::new(),
            spans: Vec::new(),
            max_spans,
            dropped_spans: 0,
            open_txns: BTreeMap::new(),
        }
    }

    /// Delivery-latency histogram for one message class.
    pub fn net_histogram(&self, subnet: Subnet, kind: TrafficKind) -> &Histogram {
        &self.net_hist[subnet.index()][kind.index()]
    }

    /// All eight (subnet, kind) histograms in display order.
    pub fn net_histograms(&self) -> Vec<(Subnet, TrafficKind, &Histogram)> {
        let mut out = Vec::with_capacity(8);
        for s in Subnet::ALL {
            for k in TrafficKind::ALL {
                out.push((s, k, self.net_histogram(s, k)));
            }
        }
        out
    }

    /// Total deliveries across every class; reconciles with
    /// `NetStats::unicast_received + broadcast_received`.
    pub fn total_net_deliveries(&self) -> u64 {
        self.net_histograms()
            .iter()
            .map(|(_, _, h)| h.count())
            .sum()
    }

    /// Transaction histograms as `(name, histogram)` pairs.
    pub fn txn_histograms(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("read", &self.txn_read),
            ("write", &self.txn_write),
            ("request_to_directory", &self.txn_request_leg),
            ("directory_to_data", &self.txn_reply_leg),
        ]
    }

    /// The epoch time series, in order of emission.
    pub fn epochs(&self) -> &[EpochSample] {
        &self.epochs
    }

    /// Retained spans (bounded by the configured capacity).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans discarded after the capacity filled. Always 0 in
    /// metrics-only mode, where span collection is off rather than
    /// overflowing.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Transactions still open (Begin without End) — non-zero only if
    /// the run ended mid-miss.
    pub fn open_txn_count(&self) -> usize {
        self.open_txns.len()
    }

    fn push_span(&mut self, make: impl FnOnce() -> Span) {
        if self.max_spans == 0 {
            return;
        }
        if self.spans.len() < self.max_spans {
            self.spans.push(make());
        } else {
            self.dropped_spans += 1;
        }
    }
}

impl Probe for TraceCollector {
    fn net_deliver(&mut self, ev: &NetDeliver) {
        self.net_hist[ev.subnet.index()][ev.kind.index()].record(ev.latency_cycles());
        let &NetDeliver {
            subnet,
            kind,
            src,
            dst,
            inject,
            at,
        } = ev;
        self.push_span(|| Span {
            track: Track::Subnet(subnet),
            name: format!("{} {} {src}->{dst}", subnet.name(), kind.name()),
            start: inject,
            end: at,
        });
    }

    fn onet_tx(&mut self, ev: &OnetTx) {
        let &OnetTx {
            hub,
            kind,
            start,
            end,
            flits,
        } = ev;
        self.push_span(|| Span {
            track: Track::OnetTx,
            name: format!("hub {hub} {} x{flits}", kind.name()),
            start,
            end,
        });
    }

    fn txn(&mut self, ev: &TxnEvent) {
        match ev.phase {
            TxnPhase::Begin { write } => {
                self.open_txns.insert(
                    ev.core,
                    OpenTxn {
                        begin: ev.at,
                        write,
                        dir_seen: None,
                        data_return: None,
                    },
                );
            }
            TxnPhase::DirSeen => {
                if let Some(t) = self.open_txns.get_mut(&ev.core) {
                    if t.dir_seen.is_none() {
                        t.dir_seen = Some(ev.at);
                    }
                }
            }
            TxnPhase::DataReturn => {
                if let Some(t) = self.open_txns.get_mut(&ev.core) {
                    if t.data_return.is_none() {
                        t.data_return = Some(ev.at);
                    }
                }
            }
            TxnPhase::End => {
                let Some(t) = self.open_txns.remove(&ev.core) else {
                    return;
                };
                let total = ev.at.saturating_sub(t.begin);
                if t.write {
                    self.txn_write.record(total);
                } else {
                    self.txn_read.record(total);
                }
                if let Some(d) = t.dir_seen {
                    self.txn_request_leg.record(d.saturating_sub(t.begin));
                    if let Some(r) = t.data_return {
                        self.txn_reply_leg.record(r.saturating_sub(d));
                    }
                }
                let core = ev.core;
                let label = if t.write { "write miss" } else { "read miss" };
                let (start, end) = (t.begin, ev.at);
                self.push_span(|| Span {
                    track: Track::Core(core),
                    name: label.to_string(),
                    start,
                    end,
                });
            }
        }
    }

    fn epoch(&mut self, sample: &EpochSample) {
        self.epochs.push(*sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(
        c: &mut TraceCollector,
        subnet: Subnet,
        kind: TrafficKind,
        inject: Cycle,
        at: Cycle,
    ) {
        c.net_deliver(&NetDeliver {
            subnet,
            kind,
            src: 1,
            dst: 2,
            inject,
            at,
        });
    }

    #[test]
    fn deliveries_land_in_their_class_histogram() {
        let mut c = TraceCollector::new();
        deliver(&mut c, Subnet::ENet, TrafficKind::Unicast, 0, 5);
        deliver(&mut c, Subnet::ENet, TrafficKind::Unicast, 10, 12);
        deliver(&mut c, Subnet::StarNet, TrafficKind::Broadcast, 0, 40);
        assert_eq!(
            c.net_histogram(Subnet::ENet, TrafficKind::Unicast).count(),
            2
        );
        assert_eq!(
            c.net_histogram(Subnet::StarNet, TrafficKind::Broadcast)
                .max(),
            40
        );
        assert_eq!(c.total_net_deliveries(), 3);
        assert_eq!(c.spans().len(), 3);
    }

    #[test]
    fn txn_lifecycle_assembles_per_core() {
        let mut c = TraceCollector::new();
        let ev = |core, phase, at| TxnEvent { core, phase, at };
        // Two interleaved transactions on different cores.
        c.txn(&ev(0, TxnPhase::Begin { write: false }, 100));
        c.txn(&ev(1, TxnPhase::Begin { write: true }, 105));
        c.txn(&ev(0, TxnPhase::DirSeen, 110));
        c.txn(&ev(1, TxnPhase::DirSeen, 112));
        c.txn(&ev(0, TxnPhase::DataReturn, 130));
        c.txn(&ev(0, TxnPhase::End, 132));
        c.txn(&ev(1, TxnPhase::DataReturn, 140));
        c.txn(&ev(1, TxnPhase::End, 141));
        // End without Begin is ignored, not a panic.
        c.txn(&ev(9, TxnPhase::End, 10));

        let [(_, read), (_, write), (_, req), (_, reply)] = c.txn_histograms();
        assert_eq!(read.count(), 1);
        assert_eq!(read.sum(), 32);
        assert_eq!(write.count(), 1);
        assert_eq!(write.sum(), 36);
        assert_eq!(req.count(), 2);
        assert_eq!(req.sum(), 10 + 7);
        assert_eq!(reply.count(), 2);
        assert_eq!(reply.sum(), 20 + 28);
        assert_eq!(read.count() + write.count(), 2);
        assert_eq!(c.open_txn_count(), 0);
    }

    #[test]
    fn span_cap_counts_drops() {
        let mut c = TraceCollector::with_span_capacity(2);
        for i in 0..5 {
            deliver(&mut c, Subnet::ENet, TrafficKind::Unicast, i, i + 1);
        }
        assert_eq!(c.spans().len(), 2);
        assert_eq!(c.dropped_spans(), 3);
        // Histograms are unaffected by the cap.
        assert_eq!(c.total_net_deliveries(), 5);
    }

    #[test]
    fn metrics_only_collects_no_spans() {
        let mut c = TraceCollector::metrics_only();
        deliver(&mut c, Subnet::ONet, TrafficKind::Unicast, 0, 9);
        assert!(c.spans().is_empty());
        assert_eq!(c.dropped_spans(), 0);
        assert_eq!(c.total_net_deliveries(), 1);
    }
}
