//! Host self-profiling: where do the *host* seconds of a run go?
//!
//! The simulated chip's time is exact and deterministic; the simulator's
//! own wall-clock cost is not, and it is what every performance PR
//! attacks. This module provides a lap-based phase profiler the engine,
//! memory system, and harness thread through their loops, so a run can
//! report "X s replaying cores, Y s advancing the network, Z s in the
//! coherence protocol" instead of one opaque total.
//!
//! ## Lap timeline
//!
//! The profiler keeps a single *last lap instant*. [`HostProfiler::lap`]
//! attributes everything since that instant to one [`HostPhase`] and
//! moves the instant forward — one `Instant::now()` per phase boundary,
//! no nesting, no gaps. As long as every stretch of code ends with a
//! lap, the phase totals tile the run's wall time, which is what lets
//! the CI acceptance check demand ≥ 90 % coverage
//! ([`HostProfile::coverage`]).
//!
//! ## Determinism guarantee
//!
//! Like [`crate::ProbeHandle`], the profiler is an observer: it reads
//! the clock and accumulates `f64` seconds, and nothing it computes
//! flows back into simulator state, so a profiled run is bit-identical
//! in simulated results to an unprofiled one. A disabled handle
//! (`Default`) costs one `Option` branch per lap point. The handle is
//! `Rc`-based and `!Send`, mirroring the probe's thread confinement:
//! each sweep worker constructs its own inside its thread.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// The host-time phases of a full-system run (plus the synthetic
/// harness's phases). Serialized by [`HostPhase::name`] into
/// `BENCH_sweep.json`, so the names are a stable vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Constructing the network, memory system and workload state.
    Setup,
    /// Core execution: replaying workload scripts onto the cores.
    Replay,
    /// Synthetic-traffic generation (open-loop harness only).
    Inject,
    /// Advancing the network fabric (`Network::tick` + delivery drain).
    Network,
    /// Coherence protocol work: outbox flush, delivery handling,
    /// completion drain.
    Coherence,
    /// Memory-controller advancement.
    Memctrl,
    /// Clock advance, skip-ahead scans, and epoch sampling.
    Advance,
    /// End-of-run energy integration and stats assembly.
    Integrate,
    /// Trace export: histogram collection, record encode, publication.
    Export,
    /// Anything a caller cannot attribute more precisely.
    Other,
}

impl HostPhase {
    /// Every phase, in display order.
    pub const ALL: [HostPhase; 10] = [
        HostPhase::Setup,
        HostPhase::Replay,
        HostPhase::Inject,
        HostPhase::Network,
        HostPhase::Coherence,
        HostPhase::Memctrl,
        HostPhase::Advance,
        HostPhase::Integrate,
        HostPhase::Export,
        HostPhase::Other,
    ];

    /// Number of phases (array dimension for accumulators).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name used in `BENCH_sweep.json` profiles.
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::Setup => "setup",
            HostPhase::Replay => "replay",
            HostPhase::Inject => "inject",
            HostPhase::Network => "network",
            HostPhase::Coherence => "coherence",
            HostPhase::Memctrl => "memctrl",
            HostPhase::Advance => "advance",
            HostPhase::Integrate => "integrate",
            HostPhase::Export => "export",
            HostPhase::Other => "other",
        }
    }

    /// Dense index in `0..COUNT` for the accumulator array.
    pub fn index(self) -> usize {
        match self {
            HostPhase::Setup => 0,
            HostPhase::Replay => 1,
            HostPhase::Inject => 2,
            HostPhase::Network => 3,
            HostPhase::Coherence => 4,
            HostPhase::Memctrl => 5,
            HostPhase::Advance => 6,
            HostPhase::Integrate => 7,
            HostPhase::Export => 8,
            HostPhase::Other => 9,
        }
    }
}

/// The finished per-phase wall-clock breakdown of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Seconds attributed to each phase, indexed by [`HostPhase::index`].
    pub secs: [f64; HostPhase::COUNT],
    /// Wall-clock seconds from profiler creation to [`HostProfiler::finish`].
    pub total_secs: f64,
}

impl HostProfile {
    /// `(phase, seconds)` pairs for phases that accumulated any time, in
    /// display order.
    pub fn phases(&self) -> impl Iterator<Item = (HostPhase, f64)> + '_ {
        HostPhase::ALL
            .into_iter()
            .map(|p| (p, self.secs[p.index()]))
            .filter(|&(_, s)| s > 0.0)
    }

    /// Seconds attributed to one phase.
    pub fn phase_secs(&self, phase: HostPhase) -> f64 {
        self.secs[phase.index()]
    }

    /// Sum of all phase attributions.
    pub fn tracked_secs(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Fraction of the total wall time the laps account for, in
    /// `0.0..=1.0` (1.0 for a zero-length profile). The contiguous lap
    /// timeline makes this ≈ 1; a low value means a code path stopped
    /// lapping.
    pub fn coverage(&self) -> f64 {
        if self.total_secs <= 0.0 {
            1.0
        } else {
            (self.tracked_secs() / self.total_secs).min(1.0)
        }
    }

    /// Fold another profile into this one (phase-wise and total sums) —
    /// how a sweep aggregates its runs' profiles.
    // audit: order-stable — host wall-clock seconds, merged in planned-run
    // order by the executor and excluded from bit-identity comparisons
    // (they differ across hosts by nature)
    pub fn merge(&mut self, other: &HostProfile) {
        for (a, b) in self.secs.iter_mut().zip(&other.secs) {
            *a += *b;
        }
        self.total_secs += other.total_secs;
    }

    /// An all-zero profile (merge identity).
    pub fn zero() -> Self {
        HostProfile {
            secs: [0.0; HostPhase::COUNT],
            total_secs: 0.0,
        }
    }
}

#[derive(Debug)]
struct ProfilerState {
    secs: [f64; HostPhase::COUNT],
    started: Instant,
    last: Instant,
}

/// Shared, cloneable handle to one run's lap accumulator.
///
/// `Default` is the disabled state: [`HostProfiler::lap`] is a single
/// `Option` branch and never reads the clock, so unprofiled runs pay
/// nothing. Enabled handles share one accumulator across the layers that
/// hold clones (engine, memory system), which is exactly what makes the
/// lap timeline contiguous across layer boundaries.
#[derive(Debug, Clone, Default)]
pub struct HostProfiler(Option<Rc<RefCell<ProfilerState>>>);

impl HostProfiler {
    /// The disabled handle (same as `Default`): laps are one dead branch.
    pub fn disabled() -> Self {
        HostProfiler(None)
    }

    /// An enabled profiler; the total-time clock starts now.
    pub fn enabled() -> Self {
        let now = Instant::now();
        HostProfiler(Some(Rc::new(RefCell::new(ProfilerState {
            secs: [0.0; HostPhase::COUNT],
            started: now,
            last: now,
        }))))
    }

    /// Whether laps are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Attribute the wall time since the previous lap (or since
    /// creation) to `phase` and restart the lap clock.
    // audit: order-stable — single serial timeline per handle (RefCell),
    // accumulated in program order; wall-clock values are host-profiling
    // data, not simulated results
    #[inline]
    pub fn lap(&self, phase: HostPhase) {
        if let Some(state) = &self.0 {
            let mut s = state.borrow_mut();
            let now = Instant::now();
            s.secs[phase.index()] += now.duration_since(s.last).as_secs_f64();
            s.last = now;
        }
    }

    /// Snapshot the accumulated profile; `total_secs` runs from creation
    /// to this call. Returns `None` for a disabled handle. Other clones
    /// of the handle remain usable (laps keep accumulating), so a sweep
    /// can snapshot per run.
    pub fn finish(&self) -> Option<HostProfile> {
        self.0.as_ref().map(|state| {
            let s = state.borrow();
            HostProfile {
                secs: s.secs,
                total_secs: s.started.elapsed().as_secs_f64(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = HostProfiler::default();
        assert!(!p.is_enabled());
        p.lap(HostPhase::Replay); // must not panic
        assert_eq!(p.finish(), None);
    }

    #[test]
    fn laps_tile_the_total() {
        let p = HostProfiler::enabled();
        assert!(p.is_enabled());
        let spin = || {
            let t = Instant::now();
            while t.elapsed().as_micros() < 2_000 {
                std::hint::black_box(0u64);
            }
        };
        spin();
        p.lap(HostPhase::Replay);
        spin();
        p.lap(HostPhase::Network);
        let profile = p.finish().expect("enabled");
        assert!(profile.phase_secs(HostPhase::Replay) > 0.0);
        assert!(profile.phase_secs(HostPhase::Network) > 0.0);
        assert_eq!(profile.phase_secs(HostPhase::Export), 0.0);
        // Contiguous laps: only the finish()-after-last-lap gap is
        // untracked, which is microseconds against 4 ms of laps.
        assert!(
            profile.coverage() > 0.9,
            "coverage {} of {}s",
            profile.coverage(),
            profile.total_secs
        );
        assert!(profile.tracked_secs() <= profile.total_secs + 1e-9);
        assert_eq!(profile.phases().count(), 2);
    }

    #[test]
    fn clones_share_one_timeline() {
        let p = HostProfiler::enabled();
        let q = p.clone();
        p.lap(HostPhase::Coherence);
        q.lap(HostPhase::Memctrl);
        let profile = q.finish().expect("enabled");
        // Both phases got *something* and the timeline never double
        // counts: tracked ≤ total.
        assert!(profile.tracked_secs() <= profile.total_secs + 1e-9);
        assert_eq!(p.finish().expect("still usable").secs, profile.secs);
    }

    #[test]
    fn merge_accumulates_phase_wise() {
        let mut a = HostProfile::zero();
        let mut b = HostProfile::zero();
        b.secs[HostPhase::Replay.index()] = 1.5;
        b.total_secs = 2.0;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.phase_secs(HostPhase::Replay), 3.0);
        assert_eq!(a.total_secs, 4.0);
        assert_eq!(HostProfile::zero().coverage(), 1.0);
    }

    #[test]
    fn names_and_indices_are_dense_and_stable() {
        for (i, p) in HostPhase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(HostPhase::Replay.name(), "replay");
        assert_eq!(HostPhase::Export.name(), "export");
        let names: std::collections::BTreeSet<_> =
            HostPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), HostPhase::COUNT, "names are distinct");
    }
}
