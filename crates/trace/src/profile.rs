//! Host self-profiling: where do the *host* seconds of a run go?
//!
//! The simulated chip's time is exact and deterministic; the simulator's
//! own wall-clock cost is not, and it is what every performance PR
//! attacks. This module provides a lap-based phase profiler the engine,
//! memory system, and harness thread through their loops, so a run can
//! report "X s replaying cores, Y s advancing the network, Z s in the
//! coherence protocol" instead of one opaque total.
//!
//! ## Lap timeline
//!
//! The profiler keeps a single *last lap instant*. [`HostProfiler::lap`]
//! attributes everything since that instant to one [`HostPhase`] and
//! moves the instant forward — one `Instant::now()` per phase boundary,
//! no nesting, no gaps. As long as every stretch of code ends with a
//! lap, the phase totals tile the run's wall time, which is what lets
//! the CI acceptance check demand ≥ 90 % coverage
//! ([`HostProfile::coverage`]).
//!
//! ## Determinism guarantee
//!
//! Like [`crate::ProbeHandle`], the profiler is an observer: it reads
//! the clock and accumulates `f64` seconds, and nothing it computes
//! flows back into simulator state, so a profiled run is bit-identical
//! in simulated results to an unprofiled one. A disabled handle
//! (`Default`) costs one `Option` branch per lap point. The handle is
//! `Rc`-based and `!Send`, mirroring the probe's thread confinement:
//! each sweep worker constructs its own inside its thread.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

/// The host-time phases of a full-system run (plus the synthetic
/// harness's phases). Serialized by [`HostPhase::name`] into
/// `BENCH_sweep.json`, so the names are a stable vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Constructing the network, memory system and workload state.
    Setup,
    /// Core execution: replaying workload scripts onto the cores.
    Replay,
    /// Synthetic-traffic generation (open-loop harness only).
    Inject,
    /// Advancing the network fabric (`Network::tick` + delivery drain).
    Network,
    /// Coherence protocol work: outbox flush, delivery handling,
    /// completion drain.
    Coherence,
    /// Memory-controller advancement.
    Memctrl,
    /// Clock advance, skip-ahead scans, and epoch sampling.
    Advance,
    /// End-of-run energy integration and stats assembly.
    Integrate,
    /// Trace export: histogram collection, record encode, publication.
    Export,
    /// Anything a caller cannot attribute more precisely.
    Other,
}

impl HostPhase {
    /// Every phase, in display order.
    pub const ALL: [HostPhase; 10] = [
        HostPhase::Setup,
        HostPhase::Replay,
        HostPhase::Inject,
        HostPhase::Network,
        HostPhase::Coherence,
        HostPhase::Memctrl,
        HostPhase::Advance,
        HostPhase::Integrate,
        HostPhase::Export,
        HostPhase::Other,
    ];

    /// Number of phases (array dimension for accumulators).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name used in `BENCH_sweep.json` profiles.
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::Setup => "setup",
            HostPhase::Replay => "replay",
            HostPhase::Inject => "inject",
            HostPhase::Network => "network",
            HostPhase::Coherence => "coherence",
            HostPhase::Memctrl => "memctrl",
            HostPhase::Advance => "advance",
            HostPhase::Integrate => "integrate",
            HostPhase::Export => "export",
            HostPhase::Other => "other",
        }
    }

    /// Dense index in `0..COUNT` for the accumulator array.
    pub fn index(self) -> usize {
        match self {
            HostPhase::Setup => 0,
            HostPhase::Replay => 1,
            HostPhase::Inject => 2,
            HostPhase::Network => 3,
            HostPhase::Coherence => 4,
            HostPhase::Memctrl => 5,
            HostPhase::Advance => 6,
            HostPhase::Integrate => 7,
            HostPhase::Export => 8,
            HostPhase::Other => 9,
        }
    }
}

/// The sub-phases of the `network` host phase ([`HostPhase::Network`]),
/// attributed by [`HostProfiler::net_lap`]. The single `network` bucket
/// dominates full-suite wall time, and the ≥5× overhaul planned for it
/// needs to know *which* mechanism inside the fabric burns the seconds.
/// Serialized by [`NetSubPhase::name`] into `BENCH_sweep.json`
/// (`net_phases`), so the names are a stable vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSubPhase {
    /// Output-port computation (XY routing decisions, route peeks).
    RouteCompute,
    /// VC/switch arbitration: candidate ordering, rotation, and output
    /// allocation.
    SwitchArb,
    /// Credit processing: downstream buffer-space checks and stalls.
    Credit,
    /// Queue operations: input-buffer pushes/pops, NIC and replication
    /// queues, delivery drains.
    QueueOps,
    /// Optical-hub arbitration: hub hand-off and SWMR link scheduling.
    HubArb,
    /// Skip-ahead scan: active-list sort, deactivation and reactivation
    /// sweeps.
    SkipScan,
}

impl NetSubPhase {
    /// Every sub-phase, in display order.
    pub const ALL: [NetSubPhase; 6] = [
        NetSubPhase::RouteCompute,
        NetSubPhase::SwitchArb,
        NetSubPhase::Credit,
        NetSubPhase::QueueOps,
        NetSubPhase::HubArb,
        NetSubPhase::SkipScan,
    ];

    /// Number of sub-phases (array dimension for accumulators).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name used in `BENCH_sweep.json` profiles.
    pub fn name(self) -> &'static str {
        match self {
            NetSubPhase::RouteCompute => "route_compute",
            NetSubPhase::SwitchArb => "switch_arb",
            NetSubPhase::Credit => "credit",
            NetSubPhase::QueueOps => "queue_ops",
            NetSubPhase::HubArb => "hub_arb",
            NetSubPhase::SkipScan => "skip_scan",
        }
    }

    /// Dense index in `0..COUNT` for the accumulator array.
    pub fn index(self) -> usize {
        match self {
            NetSubPhase::RouteCompute => 0,
            NetSubPhase::SwitchArb => 1,
            NetSubPhase::Credit => 2,
            NetSubPhase::QueueOps => 3,
            NetSubPhase::HubArb => 4,
            NetSubPhase::SkipScan => 5,
        }
    }
}

/// The finished per-phase wall-clock breakdown of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Seconds attributed to each phase, indexed by [`HostPhase::index`].
    pub secs: [f64; HostPhase::COUNT],
    /// Seconds attributed to each network sub-phase, indexed by
    /// [`NetSubPhase::index`]. All-zero unless the profiler was created
    /// with net-profiling enabled (the `ATAC_NETPROF` knob).
    pub net_sub_secs: [f64; NetSubPhase::COUNT],
    /// Wall-clock seconds from profiler creation to [`HostProfiler::finish`].
    pub total_secs: f64,
}

impl HostProfile {
    /// `(phase, seconds)` pairs for phases that accumulated any time, in
    /// display order.
    pub fn phases(&self) -> impl Iterator<Item = (HostPhase, f64)> + '_ {
        HostPhase::ALL
            .into_iter()
            .map(|p| (p, self.secs[p.index()]))
            .filter(|&(_, s)| s > 0.0)
    }

    /// Seconds attributed to one phase.
    pub fn phase_secs(&self, phase: HostPhase) -> f64 {
        self.secs[phase.index()]
    }

    /// Sum of all phase attributions.
    pub fn tracked_secs(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Fraction of the total wall time the laps account for, in
    /// `0.0..=1.0` (1.0 for a zero-length profile). The contiguous lap
    /// timeline makes this ≈ 1; a low value means a code path stopped
    /// lapping.
    pub fn coverage(&self) -> f64 {
        if self.total_secs <= 0.0 {
            1.0
        } else {
            (self.tracked_secs() / self.total_secs).min(1.0)
        }
    }

    /// `(sub-phase, seconds)` pairs for network sub-phases that
    /// accumulated any time, in display order.
    pub fn net_phases(&self) -> impl Iterator<Item = (NetSubPhase, f64)> + '_ {
        NetSubPhase::ALL
            .into_iter()
            .map(|p| (p, self.net_sub_secs[p.index()]))
            .filter(|&(_, s)| s > 0.0)
    }

    /// Seconds attributed to one network sub-phase.
    pub fn net_sub(&self, sub: NetSubPhase) -> f64 {
        self.net_sub_secs[sub.index()]
    }

    /// Sum of all network sub-phase attributions.
    pub fn net_tracked_secs(&self) -> f64 {
        self.net_sub_secs.iter().sum()
    }

    /// Fraction of the parent [`HostPhase::Network`] seconds the network
    /// sub-phase laps account for, in `0.0..=1.0` (1.0 when the network
    /// phase saw no time). The contiguous sub-lap timeline inside the
    /// network stretch makes this ≈ 1 when net-profiling is on; the CI
    /// acceptance bound demands ≥ 95 %.
    pub fn net_sub_coverage(&self) -> f64 {
        let net = self.secs[HostPhase::Network.index()];
        if net <= 0.0 {
            1.0
        } else {
            (self.net_tracked_secs() / net).min(1.0)
        }
    }

    /// Fold another profile into this one (phase-wise and total sums) —
    /// how a sweep aggregates its runs' profiles.
    // audit: order-stable — host wall-clock seconds, merged in planned-run
    // order by the executor and excluded from bit-identity comparisons
    // (they differ across hosts by nature)
    pub fn merge(&mut self, other: &HostProfile) {
        for (a, b) in self.secs.iter_mut().zip(&other.secs) {
            *a += *b;
        }
        for (a, b) in self.net_sub_secs.iter_mut().zip(&other.net_sub_secs) {
            *a += *b;
        }
        self.total_secs += other.total_secs;
    }

    /// An all-zero profile (merge identity).
    pub fn zero() -> Self {
        HostProfile {
            secs: [0.0; HostPhase::COUNT],
            net_sub_secs: [0.0; NetSubPhase::COUNT],
            total_secs: 0.0,
        }
    }
}

#[derive(Debug)]
struct ProfilerState {
    secs: [f64; HostPhase::COUNT],
    net_secs: [f64; NetSubPhase::COUNT],
    started: Instant,
    last: Instant,
    /// Anchor of the network sub-phase timeline. Reset by every
    /// [`HostProfiler::lap`] so sub-laps can only tile the stretch since
    /// the previous phase boundary.
    last_net: Instant,
    /// Network ticks announced via [`HostProfiler::net_tick`].
    net_ticks: u64,
}

/// Shared, cloneable handle to one run's lap accumulator.
///
/// `Default` is the disabled state: [`HostProfiler::lap`] is a single
/// `Option` branch and never reads the clock, so unprofiled runs pay
/// nothing. Enabled handles share one accumulator across the layers that
/// hold clones (engine, memory system), which is exactly what makes the
/// lap timeline contiguous across layer boundaries.
#[derive(Debug, Clone, Default)]
pub struct HostProfiler {
    state: Option<Rc<RefCell<ProfilerState>>>,
    /// Whether [`HostProfiler::net_lap`] records network sub-phases.
    /// Kept outside the `RefCell` so a disabled sub-lap point (the
    /// common, per-flit case) costs one bool branch, not a borrow.
    netprof: bool,
    /// log2 of the network-tick sampling period: sub-laps read the clock
    /// on 1 in `2^net_sample_log2` ticks and scale the measured duration
    /// by the period, so the sub-phase totals still estimate the full
    /// stretch. 0 (the default) samples every tick — exact tiling.
    net_sample_log2: u32,
    /// Whether the current network tick is a sampled one. Shared across
    /// clones and kept in a `Cell` *outside* the `RefCell`, so the
    /// per-flit [`HostProfiler::net_lap`] call sites on unsampled ticks
    /// (the overwhelming majority under `ATAC_NETPROF_SAMPLE_LOG2`) cost
    /// two branches and a plain load — never a `RefCell` borrow.
    net_sampling: Rc<Cell<bool>>,
}

impl HostProfiler {
    /// The disabled handle (same as `Default`): laps are one dead branch.
    pub fn disabled() -> Self {
        HostProfiler {
            state: None,
            netprof: false,
            net_sample_log2: 0,
            net_sampling: Rc::new(Cell::new(false)),
        }
    }

    /// An enabled profiler; the total-time clock starts now. Network
    /// sub-phase laps stay disabled (see
    /// [`HostProfiler::enabled_with_netprof`]).
    pub fn enabled() -> Self {
        Self::enabled_with_netprof(false)
    }

    /// An enabled profiler that additionally attributes network
    /// sub-phases via [`HostProfiler::net_lap`] when `netprof` is true
    /// (the `ATAC_NETPROF` knob). Sub-laps read the clock per flit
    /// movement, so this is opt-in profiling, not the default.
    pub fn enabled_with_netprof(netprof: bool) -> Self {
        let now = Instant::now();
        HostProfiler {
            state: Some(Rc::new(RefCell::new(ProfilerState {
                secs: [0.0; HostPhase::COUNT],
                net_secs: [0.0; NetSubPhase::COUNT],
                started: now,
                last: now,
                last_net: now,
                net_ticks: 0,
            }))),
            netprof,
            net_sample_log2: 0,
            net_sampling: Rc::new(Cell::new(true)),
        }
    }

    /// Enable statistical network-tick sampling: sub-laps read the clock
    /// on 1 in `2^log2` ticks (announced via [`HostProfiler::net_tick`])
    /// and scale the measured stretch by the period. At the sweep's
    /// millions of ticks the scaled estimate concentrates tightly around
    /// the true sub-phase seconds while eliminating nearly all of the
    /// per-flit clock-read overhead the netprof mode used to pay.
    pub fn with_net_sampling(mut self, log2: u32) -> Self {
        self.net_sample_log2 = log2;
        self
    }

    /// Announce the start of one network tick and decide whether its
    /// sub-laps are sampled. Cheap on unsampled ticks and when netprof
    /// is off: one branch plus (when enabled) a counter increment.
    #[inline]
    pub fn net_tick(&self) {
        if !self.netprof {
            return;
        }
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let mask = (1u64 << self.net_sample_log2) - 1;
            self.net_sampling.set(s.net_ticks & mask == 0);
            s.net_ticks += 1;
        }
    }

    /// Whether laps are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Whether network sub-phase laps are being recorded.
    #[inline]
    pub fn netprof_enabled(&self) -> bool {
        self.netprof && self.state.is_some()
    }

    /// Attribute the wall time since the previous lap (or since
    /// creation) to `phase` and restart the lap clock.
    // audit: order-stable — single serial timeline per handle (RefCell),
    // accumulated in program order; wall-clock values are host-profiling
    // data, not simulated results
    #[inline]
    pub fn lap(&self, phase: HostPhase) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let now = Instant::now();
            s.secs[phase.index()] += now.duration_since(s.last).as_secs_f64();
            s.last = now;
            s.last_net = now;
        }
    }

    /// Attribute the wall time since the previous sub-lap (or since the
    /// previous phase boundary) to the network sub-phase `sub` and
    /// advance the sub-lap anchor. A no-op unless the profiler was
    /// created with net-profiling on, so the per-flit call sites in the
    /// wormhole path cost one bool branch when disabled. Sub-laps never
    /// advance the parent phase anchor: the `network` phase still
    /// receives its full stretch, and the sub-phases tile it from
    /// inside ([`HostProfile::net_sub_coverage`]).
    // audit: order-stable — single serial timeline per handle (RefCell),
    // accumulated in program order; wall-clock values are host-profiling
    // data, not simulated results
    #[inline]
    pub fn net_lap(&self, sub: NetSubPhase) {
        if !self.netprof || !self.net_sampling.get() {
            return;
        }
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let scale = (1u64 << self.net_sample_log2) as f64;
            let now = Instant::now();
            s.net_secs[sub.index()] += now.duration_since(s.last_net).as_secs_f64() * scale;
            s.last_net = now;
        }
    }

    /// Snapshot the accumulated profile; `total_secs` runs from creation
    /// to this call. Returns `None` for a disabled handle. Other clones
    /// of the handle remain usable (laps keep accumulating), so a sweep
    /// can snapshot per run.
    ///
    /// Under statistical sampling (`net_sample_log2 > 0`) the raw scaled
    /// sub-lap sums systematically overshoot the parent phase: sampled
    /// ticks pay the `Instant::now()` + `RefCell` overhead that skipped
    /// ticks do not, so the ×2^log2 extrapolation amplifies measurement
    /// overhead that the `network` phase total never contains (the
    /// committed BENCH_sweep.json once showed a 237 s sub-phase sum
    /// against an 80.8 s network phase). The sampled estimate is still
    /// an unbiased *attribution* — which sub-phase owns which share —
    /// so finish() keeps the shares and renormalizes them onto the
    /// exactly-measured `phases.network` seconds. At log2 = 0 every tick
    /// is measured and the raw sums tile the phase exactly, so they are
    /// returned untouched. Either way `net_tracked_secs() ≤
    /// phase_secs(Network)` holds per finished profile, and — because
    /// [`HostProfile::merge`] is element-wise sums — per merged sweep
    /// aggregate too.
    pub fn finish(&self) -> Option<HostProfile> {
        self.state.as_ref().map(|state| {
            let s = state.borrow();
            let mut net_sub_secs = s.net_secs;
            if self.net_sample_log2 > 0 {
                let raw: f64 = net_sub_secs.iter().sum();
                if raw > 0.0 {
                    let scale = s.secs[HostPhase::Network.index()] / raw;
                    for v in &mut net_sub_secs {
                        *v *= scale;
                    }
                }
            }
            HostProfile {
                secs: s.secs,
                net_sub_secs,
                total_secs: s.started.elapsed().as_secs_f64(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = HostProfiler::default();
        assert!(!p.is_enabled());
        p.lap(HostPhase::Replay); // must not panic
        assert_eq!(p.finish(), None);
    }

    #[test]
    fn laps_tile_the_total() {
        let p = HostProfiler::enabled();
        assert!(p.is_enabled());
        let spin = || {
            let t = Instant::now();
            while t.elapsed().as_micros() < 2_000 {
                std::hint::black_box(0u64);
            }
        };
        spin();
        p.lap(HostPhase::Replay);
        spin();
        p.lap(HostPhase::Network);
        let profile = p.finish().expect("enabled");
        assert!(profile.phase_secs(HostPhase::Replay) > 0.0);
        assert!(profile.phase_secs(HostPhase::Network) > 0.0);
        assert_eq!(profile.phase_secs(HostPhase::Export), 0.0);
        // Contiguous laps: only the finish()-after-last-lap gap is
        // untracked, which is microseconds against 4 ms of laps.
        assert!(
            profile.coverage() > 0.9,
            "coverage {} of {}s",
            profile.coverage(),
            profile.total_secs
        );
        assert!(profile.tracked_secs() <= profile.total_secs + 1e-9);
        assert_eq!(profile.phases().count(), 2);
    }

    #[test]
    fn clones_share_one_timeline() {
        let p = HostProfiler::enabled();
        let q = p.clone();
        p.lap(HostPhase::Coherence);
        q.lap(HostPhase::Memctrl);
        let profile = q.finish().expect("enabled");
        // Both phases got *something* and the timeline never double
        // counts: tracked ≤ total.
        assert!(profile.tracked_secs() <= profile.total_secs + 1e-9);
        assert_eq!(p.finish().expect("still usable").secs, profile.secs);
    }

    #[test]
    fn merge_accumulates_phase_wise() {
        let mut a = HostProfile::zero();
        let mut b = HostProfile::zero();
        b.secs[HostPhase::Replay.index()] = 1.5;
        b.total_secs = 2.0;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.phase_secs(HostPhase::Replay), 3.0);
        assert_eq!(a.total_secs, 4.0);
        assert_eq!(HostProfile::zero().coverage(), 1.0);
    }

    #[test]
    fn names_and_indices_are_dense_and_stable() {
        for (i, p) in HostPhase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(HostPhase::Replay.name(), "replay");
        assert_eq!(HostPhase::Export.name(), "export");
        let names: std::collections::BTreeSet<_> =
            HostPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), HostPhase::COUNT, "names are distinct");
    }

    #[test]
    fn net_sub_phase_names_and_indices_are_dense_and_stable() {
        for (i, p) in NetSubPhase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(NetSubPhase::RouteCompute.name(), "route_compute");
        assert_eq!(NetSubPhase::SkipScan.name(), "skip_scan");
        let names: std::collections::BTreeSet<_> =
            NetSubPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), NetSubPhase::COUNT, "names are distinct");
    }

    #[test]
    fn net_lap_is_inert_without_netprof() {
        let p = HostProfiler::enabled();
        assert!(p.is_enabled());
        assert!(!p.netprof_enabled());
        p.net_lap(NetSubPhase::RouteCompute);
        p.lap(HostPhase::Network);
        let profile = p.finish().expect("enabled");
        assert_eq!(profile.net_tracked_secs(), 0.0);
        assert_eq!(profile.net_phases().count(), 0);
        // With no sub-laps recorded, coverage degrades to 0 only if the
        // network phase saw time — which it did here.
        assert!(profile.phase_secs(HostPhase::Network) > 0.0);
        assert_eq!(profile.net_sub_coverage(), 0.0);
        // Disabled handles are also inert.
        HostProfiler::disabled().net_lap(NetSubPhase::Credit);
    }

    #[test]
    fn net_laps_tile_the_network_phase() {
        let p = HostProfiler::enabled_with_netprof(true);
        assert!(p.netprof_enabled());
        let spin = || {
            let t = Instant::now();
            while t.elapsed().as_micros() < 1_000 {
                std::hint::black_box(0u64);
            }
        };
        // A non-network stretch first: its time must not leak into the
        // sub-phase accumulators because lap() resets the sub anchor.
        spin();
        p.lap(HostPhase::Replay);
        // Network stretch, tiled by sub-laps.
        spin();
        p.net_lap(NetSubPhase::RouteCompute);
        spin();
        p.net_lap(NetSubPhase::QueueOps);
        p.lap(HostPhase::Network);
        let profile = p.finish().expect("enabled");
        assert!(profile.net_sub(NetSubPhase::RouteCompute) > 0.0);
        assert!(profile.net_sub(NetSubPhase::QueueOps) > 0.0);
        assert_eq!(profile.net_sub(NetSubPhase::HubArb), 0.0);
        assert_eq!(profile.net_phases().count(), 2);
        // Sub-laps tile the network stretch from inside: they can never
        // exceed it, and here they cover nearly all of it.
        let net = profile.phase_secs(HostPhase::Network);
        assert!(profile.net_tracked_secs() <= net + 1e-9);
        assert!(
            profile.net_sub_coverage() > 0.95,
            "sub coverage {} of {net}s",
            profile.net_sub_coverage()
        );
    }

    #[test]
    fn sampled_net_laps_scale_to_the_full_stretch() {
        // 1-in-4 sampling: only ticks 0, 4, 8, … read the clock, and
        // their measured stretch is scaled ×4.
        let p = HostProfiler::enabled_with_netprof(true).with_net_sampling(2);
        let spin = || {
            let t = Instant::now();
            while t.elapsed().as_micros() < 500 {
                std::hint::black_box(0u64);
            }
        };
        let mut sampled = 0u32;
        for tick in 0..8 {
            p.net_tick();
            spin();
            p.net_lap(NetSubPhase::QueueOps);
            if tick % 4 == 0 {
                sampled += 1;
            }
        }
        p.lap(HostPhase::Network);
        let profile = p.finish().expect("enabled");
        assert_eq!(sampled, 2);
        let net = profile.phase_secs(HostPhase::Network);
        let tracked = profile.net_sub(NetSubPhase::QueueOps);
        // Two sampled 500 µs stretches scaled ×4 ≈ the 4 ms total, then
        // renormalized onto the measured network phase; allow generous
        // slack for spin jitter but require the scale-up to have
        // happened (unscaled it could only reach ~1/4 of the stretch).
        assert!(tracked > net * 0.4, "tracked {tracked} vs network {net}");
        // net_tick is inert for non-netprof profilers.
        let q = HostProfiler::enabled();
        q.net_tick();
        q.net_lap(NetSubPhase::Credit);
        assert_eq!(q.finish().expect("enabled").net_tracked_secs(), 0.0);
    }

    #[test]
    fn sampled_net_laps_reconcile_with_the_network_phase() {
        // The reconciliation invariant the sweep doc relies on: even
        // under statistical sampling — where sampled ticks pay clock
        // and borrow overhead that the skipped ticks do not, so the raw
        // scaled sums overshoot — the finished profile's sub-phase sum
        // never exceeds the parent network phase (per worker), and in
        // fact tiles it exactly because finish() renormalizes shares.
        let p = HostProfiler::enabled_with_netprof(true).with_net_sampling(4);
        let spin = || {
            let t = Instant::now();
            while t.elapsed().as_micros() < 100 {
                std::hint::black_box(0u64);
            }
        };
        for _ in 0..64 {
            p.net_tick();
            spin();
            p.net_lap(NetSubPhase::SwitchArb);
            spin();
            p.net_lap(NetSubPhase::QueueOps);
        }
        p.lap(HostPhase::Network);
        let profile = p.finish().expect("enabled");
        let net = profile.phase_secs(HostPhase::Network);
        assert!(net > 0.0);
        assert!(
            profile.net_tracked_secs() <= net + 1e-9,
            "sub-phase sum {} exceeds network phase {net}",
            profile.net_tracked_secs()
        );
        assert!(
            (profile.net_sub_coverage() - 1.0).abs() < 1e-9,
            "renormalized shares tile the phase, coverage {}",
            profile.net_sub_coverage()
        );
        // Attribution shares survive the renormalization: both sampled
        // sub-phases kept a nonzero slice.
        assert!(profile.net_sub(NetSubPhase::SwitchArb) > 0.0);
        assert!(profile.net_sub(NetSubPhase::QueueOps) > 0.0);

        // Merging per-worker profiles preserves the invariant: sums of
        // per-profile `sub ≤ net` inequalities.
        let mut merged = HostProfile::zero();
        merged.merge(&profile);
        merged.merge(&profile);
        assert!(
            merged.net_tracked_secs() <= merged.phase_secs(HostPhase::Network) + 1e-9,
            "merged sub-phase sum {} exceeds merged network phase {}",
            merged.net_tracked_secs(),
            merged.phase_secs(HostPhase::Network)
        );
    }

    #[test]
    fn merge_accumulates_net_sub_secs() {
        let mut a = HostProfile::zero();
        let mut b = HostProfile::zero();
        b.net_sub_secs[NetSubPhase::Credit.index()] = 0.25;
        b.secs[HostPhase::Network.index()] = 0.5;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.net_sub(NetSubPhase::Credit), 0.5);
        assert!((a.net_sub_coverage() - 0.5).abs() < 1e-12);
        assert_eq!(HostProfile::zero().net_sub_coverage(), 1.0);
    }
}
