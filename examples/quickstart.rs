//! Quickstart: run one application on the ATAC+ optical architecture and
//! the electrical-mesh baseline, and compare runtime, energy and EDP —
//! the paper's core experiment in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Uses a 256-core chip so it finishes in a few seconds; switch to
//! `Topology::atac_1024()` for the paper's full-size chip.

use atac::prelude::*;

fn main() {
    let topo = Topology::small(16, 4); // 256 cores, 16 clusters
    let benchmark = Benchmark::Radix;

    println!(
        "running {} on a {}-core chip...\n",
        benchmark.name(),
        topo.cores()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "architecture", "cycles", "IPC", "energy (J)", "EDP (J*s)"
    );

    for arch in [Arch::atac_plus(), Arch::EMeshBcast, Arch::EMeshPure] {
        let cfg = SimConfig {
            topo,
            arch,
            ..SimConfig::default()
        };
        let r = atac::run_benchmark(&cfg, benchmark, Scale::Paper);
        println!(
            "{:<14} {:>12} {:>12.4} {:>14.4e} {:>12.4e}",
            r.arch,
            r.cycles,
            r.ipc,
            r.energy.network_and_caches().value(),
            r.edp(&cfg).value(),
        );
    }

    println!(
        "\nATAC+ wins by finishing sooner: shorter runtime cuts the\n\
         non-data-dependent (leakage/clock) energy of every component,\n\
         which is the paper's central result."
    );
}
