//! Coherence-protocol audit: compare ACKwise_k against Dir_kB on the
//! same application and inspect the protocol-level counters the paper's
//! §V-F argues from — invalidation broadcasts, acknowledgement volume,
//! eviction styles, and the ATAC+ sequence-number machinery that keeps
//! split-path routing coherent.
//!
//! ```sh
//! cargo run --release --example coherence_audit
//! ```

use atac::prelude::*;

fn main() {
    let topo = Topology::small(16, 4); // 256 cores
    let benchmark = Benchmark::Fmm;
    println!(
        "auditing {} on ATAC+ with {} cores\n",
        benchmark.name(),
        topo.cores()
    );

    for protocol in [ProtocolKind::AckWise { k: 4 }, ProtocolKind::DirB { k: 4 }] {
        let cfg = SimConfig {
            topo,
            protocol,
            ..SimConfig::default()
        };
        let r = atac::run_benchmark(&cfg, benchmark, Scale::Paper);
        let c = &r.coh;
        println!("--- {} ---", protocol.name());
        println!("  completion time         {:>10} cycles", r.cycles);
        println!(
            "  L1-D miss rate          {:>10.2} %",
            c.l1d_miss_rate() * 100.0
        );
        println!("  invalidation unicasts   {:>10}", c.inv_unicasts);
        println!("  invalidation broadcasts {:>10}", c.inv_broadcasts);
        println!(
            "  acks per broadcast      {:>10.1}   (ACKwise: only true sharers; Dir_kB: all cores)",
            if c.inv_broadcasts == 0 {
                0.0
            } else {
                // unicast invs are acked 1:1; the rest of the acks answer
                // broadcasts.
                (c.inv_acks.saturating_sub(c.inv_unicasts)) as f64 / c.inv_broadcasts as f64
            }
        );
        println!(
            "  evictions clean/dirty/silent {:>6}/{}/{}",
            c.evictions_clean, c.evictions_dirty, c.evictions_silent
        );
        println!(
            "  seq-number machinery: {} unicasts held, {} broadcasts buffered, {} stale drops",
            c.seq_buffered_unicasts, c.seq_buffered_broadcasts, c.seq_dropped_broadcasts
        );
        println!();
    }

    println!(
        "ACKwise needs dramatically fewer acknowledgements per broadcast,\n\
         which is why it scales to 1000 cores where Dir_kB's all-core ack\n\
         collection melts down (paper Fig. 14)."
    );
}
