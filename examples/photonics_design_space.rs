//! Photonics design-space exploration: which optical device features
//! matter?
//!
//! The paper's §V-C asks where nanophotonics research effort should go:
//! power-gateable on-chip lasers? athermal rings? ultra-low-loss
//! waveguides? This example answers it the way an architect would — run
//! the application *once*, then re-integrate the energy under every
//! technology scenario and a waveguide-loss sweep (energy integration is
//! a pure function of the run's event counters, so no re-simulation is
//! needed).
//!
//! ```sh
//! cargo run --release --example photonics_design_space
//! ```

use atac::prelude::*;
use atac::sim::energy::integrate;

fn main() {
    let topo = Topology::small(16, 4); // 256 cores
    let base = SimConfig {
        topo,
        ..SimConfig::default()
    };
    let benchmark = Benchmark::Barnes;

    println!(
        "simulating {} once on ATAC+ ({} cores)...",
        benchmark.name(),
        topo.cores()
    );
    let r = atac::run_benchmark(&base, benchmark, Scale::Paper);
    println!(
        "done: {} cycles, SWMR links busy {:.1}% of the time\n",
        r.cycles,
        r.net.swmr_utilization(topo.clusters()) * 100.0
    );

    println!("--- Table IV technology flavors (network energy, J) ---");
    for scenario in PhotonicScenario::ALL {
        let cfg = SimConfig {
            scenario,
            ..base.clone()
        };
        let e = integrate(&cfg, &r.net, &r.coh, r.cycles, r.ipc);
        println!(
            "{:<18} laser {:>10.3e}  ring-tuning {:>10.3e}  total network {:>10.3e}",
            scenario.name(),
            e.laser.value(),
            e.ring_tuning.value(),
            e.network().value(),
        );
    }

    println!("\n--- waveguide-loss sensitivity (ATAC+, network energy, J) ---");
    for loss in [0.2, 0.5, 1.0, 2.0, 4.0] {
        let cfg = SimConfig {
            waveguide_loss_db: Some(loss),
            ..base.clone()
        };
        let e = integrate(&cfg, &r.net, &r.coh, r.cycles, r.ipc);
        println!("  {loss:>4.1} dB: {:>10.3e}", e.network().value());
    }

    println!(
        "\nConclusion (matching the paper): laser power gating and athermal\n\
         rings are worth the research investment; moderate waveguide losses\n\
         are tolerable once the laser can be gated."
    );
}
