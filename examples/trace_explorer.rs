//! Cross-layer trace exploration: run `radix` on a traced ATAC+ chip and
//! read the run the way the paper does — laser mode occupancy over time
//! (the Table V idle/unicast/broadcast split) and per-class message
//! latency percentiles.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use atac::prelude::*;
use atac::trace::percentile_row;

fn main() {
    let cfg = SimConfig {
        topo: Topology::small(8, 4), // 64 cores: quick, still optical
        ..SimConfig::default()
    };
    let epoch = 2_000u64;

    let collector = Rc::new(RefCell::new(TraceCollector::new()));
    let probe = ProbeHandle::attach(Rc::clone(&collector));
    let r = atac::run_benchmark_traced(&cfg, Benchmark::Radix, Scale::Test, probe, Some(epoch));

    println!(
        "radix on {} cores ({}): {} cycles, ipc {:.3}",
        cfg.topo.cores(),
        cfg.arch.name(),
        r.cycles,
        r.ipc
    );

    let c = collector.borrow();

    // --- laser mode occupancy time series (Table V) -------------------
    // Each epoch splits every optical link's cycles into idle / unicast /
    // broadcast. The laser is idle almost everywhere (the observation
    // that motivates laser gating), so the bar scales *active* cycles to
    // the busiest row to make the burst structure visible.
    let rows: Vec<(u64, u64, u64, u64)> = {
        let epochs = c.epochs();
        let group = epochs.len().div_ceil(20).max(1);
        epochs
            .chunks(group)
            .map(|g| {
                let sum = |f: fn(&atac::trace::EpochSample) -> u64| g.iter().map(f).sum::<u64>();
                (
                    g[0].start,
                    sum(|e| e.laser_idle_cycles),
                    sum(|e| e.laser_unicast_cycles),
                    sum(|e| e.laser_broadcast_cycles),
                )
            })
            .collect()
    };
    let peak = rows
        .iter()
        .map(|&(_, _, u, b)| u + b)
        .max()
        .unwrap_or(0)
        .max(1);
    println!(
        "\nlaser mode occupancy ({epoch}-cycle epochs, coalesced to {} rows)",
        rows.len()
    );
    println!(
        "{:>12}  {:>6} {:>6} {:>6}  active (u=unicast b=broadcast, peak-scaled)",
        "cycles", "idle%", "uni%", "bcast%"
    );
    for (start, idle, uni, bcast) in rows {
        let total = (idle + uni + bcast).max(1) as f64;
        let bar_u = (40 * uni).div_ceil(peak) as usize;
        let bar_b = (40 * bcast).div_ceil(peak) as usize;
        println!(
            "{:>12}  {:>6.1} {:>6.1} {:>6.1}  {}{}",
            start,
            100.0 * idle as f64 / total,
            100.0 * uni as f64 / total,
            100.0 * bcast as f64 / total,
            "u".repeat(bar_u),
            "b".repeat(bar_b)
        );
    }

    // --- per-class latency percentiles --------------------------------
    println!("\nmessage latency percentiles (cycles)");
    for (subnet, kind, h) in c.net_histograms() {
        if h.count() > 0 {
            println!(
                "  {}",
                percentile_row(&format!("{}/{}", subnet.name(), kind.name()), h)
            );
        }
    }
    println!("\ncoherence transaction latency percentiles (cycles)");
    for (name, h) in c.txn_histograms() {
        if h.count() > 0 {
            println!("  {}", percentile_row(name, h));
        }
    }
}
