//! Network-level exploration with synthetic traffic (no cores, no
//! coherence): sweep offered load against routing policies and watch
//! where each saturates — the experiment behind the paper's Fig. 3 and
//! the motivation for distance-based routing.
//!
//! ```sh
//! cargo run --release --example network_explorer
//! ```

use atac::net::harness::{run_synthetic, SyntheticConfig};
use atac::net::{AtacNet, Mesh, MeshKind, Network, ReceiveNet, RoutingPolicy, Topology};

fn main() {
    let topo = Topology::small(16, 4); // 256 cores
    let loads = [0.02, 0.05, 0.10, 0.20, 0.30];

    println!("average latency (cycles) under uniform-random traffic + 0.1% broadcasts");
    println!("on a {}-core chip; 's' marks saturation\n", topo.cores());
    print!("{:<22}", "network / load:");
    for l in loads {
        print!("{l:>9.2}");
    }
    println!();

    type NetFactory = Box<dyn FnMut() -> Box<dyn Network>>;
    let mut nets: Vec<(String, NetFactory)> = vec![
        (
            "EMesh-BCast".into(),
            Box::new(move || Box::new(Mesh::new(topo, MeshKind::BcastTree, 64, 4))),
        ),
        (
            "ATAC (Cluster)".into(),
            Box::new(move || {
                Box::new(AtacNet::new(
                    topo,
                    64,
                    4,
                    RoutingPolicy::Cluster,
                    ReceiveNet::BNet,
                ))
            }),
        ),
        (
            "ATAC+ (Distance-10)".into(),
            Box::new(move || {
                Box::new(AtacNet::new(
                    topo,
                    64,
                    4,
                    RoutingPolicy::Distance(10),
                    ReceiveNet::StarNet,
                ))
            }),
        ),
        (
            "ATAC+ (Distance-All)".into(),
            Box::new(move || {
                Box::new(AtacNet::new(
                    topo,
                    64,
                    4,
                    RoutingPolicy::DistanceAll,
                    ReceiveNet::StarNet,
                ))
            }),
        ),
    ];

    for (name, make) in &mut nets {
        print!("{name:<22}");
        for &load in &loads {
            let mut net = make();
            let cfg = SyntheticConfig {
                load,
                warmup: 300,
                measure: 1_500,
                drain: 20_000,
                ..Default::default()
            };
            let r = run_synthetic(net.as_mut(), &cfg);
            if r.saturated {
                print!("{:>9}", "s");
            } else {
                print!("{:>9.1}", r.avg_latency);
            }
        }
        println!();
    }

    println!(
        "\nReading the table like the paper reads Fig. 3: the optical path is\n\
         fastest at low load (low zero-load latency), but pushing *all*\n\
         unicasts onto it saturates early — distance-based routing balances\n\
         load between the ENet and the ONet."
    );
}
